module Schema = Bdbms_relation.Schema
module Expr = Bdbms_relation.Expr
module Value = Bdbms_relation.Value
module Table = Bdbms_relation.Table

(* ------------------------------------------------------------ selectivity *)

(* Heuristic selectivities (textbook constants); also used by the cost
   model's EXPLAIN estimates. *)
let rec selectivity = function
  | Expr.Cmp (Expr.Eq, _, _) -> 0.10
  | Expr.Cmp (Expr.Neq, _, _) -> 0.90
  | Expr.Cmp ((Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq), _, _) -> 0.30
  | Expr.Like _ -> 0.25
  | Expr.In_list (_, vs) -> Float.min 0.9 (0.10 *. float_of_int (List.length vs))
  | Expr.Is_null _ -> 0.05
  | Expr.And (a, b) -> selectivity a *. selectivity b
  | Expr.Or (a, b) ->
      let sa = selectivity a and sb = selectivity b in
      sa +. sb -. (sa *. sb)
  | Expr.Not a -> 1.0 -. selectivity a
  | Expr.Lit _ | Expr.Col _ | Expr.Arith _ | Expr.Concat _ -> 0.5

let conjuncts_selectivity es =
  List.fold_left (fun acc e -> acc *. selectivity e) 1.0 es

(* --------------------------------------------------------------- the frame *)

type frame = {
  entries : (Ast.from_item * Table.t) list;
  schema : Schema.t;
  prefixes : string list;
  multi : bool;
  slices : (int * Schema.t) list;
}

let item_prefix (f : Ast.from_item) =
  Option.value f.Ast.table_alias ~default:f.Ast.table

let frame entries =
  let multi = List.length entries > 1 in
  let prefixed =
    List.map
      (fun ((f : Ast.from_item), table) ->
        let schema = Table.schema table in
        if multi then
          let prefix = item_prefix f in
          Schema.rename_columns schema
            (List.map
               (fun c -> (c.Schema.name, prefix ^ "_" ^ c.Schema.name))
               (Schema.columns schema))
        else schema)
      entries
  in
  (* the canonical output schema is the fold of Schema.concat (which
     renames collisions), exactly as the naive evaluator builds it; each
     source owns a contiguous slice of it *)
  let schema =
    match prefixed with
    | [] -> invalid_arg "Plan.frame: empty FROM"
    | first :: rest -> List.fold_left Schema.concat first rest
  in
  let columns = Schema.columns schema in
  let slices =
    let rec go offset cols = function
      | [] -> []
      | s :: rest ->
          let arity = Schema.arity s in
          let rec split n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | c :: tl -> split (n - 1) (c :: acc) tl
            | [] -> invalid_arg "Plan.frame: slice underflow"
          in
          let mine, others = split arity [] cols in
          (offset, Schema.make mine) :: go (offset + arity) others rest
    in
    go 0 columns prefixed
  in
  {
    entries;
    schema;
    prefixes = List.map (fun (f, _) -> item_prefix f) entries;
    multi;
    slices;
  }

(* ---------------------------------------------------------------- the plan *)

type access =
  | Seq_scan
  | Index_probe of { index : Context.index_def; value : Value.t }

type source = {
  item : Ast.from_item;
  table : Table.t;
  prefix : string;
  offset : int;
  schema : Schema.t;
  access : access;
  pushed : Expr.t list;
  est_rows : float;
}

type join_kind =
  | Hash of { left_cols : int list; right_cols : int list; build_left : bool }
  | Nested

type step = { src : source; kind : join_kind; post : Expr.t list; est_rows : float }

type t = {
  base : source;
  steps : step list;
  schema : Schema.t;
  prefixes : string list;
}

let rec split_conjuncts = function
  | Expr.And (a, b) -> split_conjuncts a @ split_conjuncts b
  | e -> [ e ]

(* Classification of one resolved conjunct against the source slices. *)
type classified =
  | Pushed of int * Expr.t
  | Edge of { lo : int; lo_col : int; hi : int; hi_col : int }
      (* equi-join edge, absolute column positions, [lo < hi] source order *)
  | Deferred of int * Expr.t  (* applied once source [i] has been joined *)

let classify frame conjunct =
  let source_of pos =
    let rec go i = function
      | [] -> invalid_arg "Plan.classify: position out of range"
      | (offset, slice) :: rest ->
          if pos < offset + Schema.arity slice then i else go (i + 1) rest
    in
    go 0 frame.slices
  in
  let positions =
    List.map (Schema.index_of_exn frame.schema) (Expr.columns_used conjunct)
  in
  let sources = List.sort_uniq compare (List.map source_of positions) in
  match (sources, conjunct) with
  | [], _ -> Pushed (0, conjunct) (* column-free predicate: cheapest at base *)
  | [ i ], _ -> Pushed (i, conjunct)
  | [ i; j ], Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
      let pa = Schema.index_of_exn frame.schema a
      and pb = Schema.index_of_exn frame.schema b in
      let sa = source_of pa in
      (* orient the edge so [lo] is the earlier FROM item *)
      if sa = i then Edge { lo = i; lo_col = pa; hi = j; hi_col = pb }
      else Edge { lo = i; lo_col = pb; hi = j; hi_col = pa }
  | is, _ -> Deferred (List.fold_left max 0 is, conjunct)

(* An equality [col = literal] usable as an index probe, in slice-local
   terms: the pushed conjuncts reference slice column names. *)
let probe_of_pushed ctx (f : Ast.from_item) base_schema slice pushed =
  List.find_map
    (fun e ->
      let probe c v =
        match Schema.index_of slice c with
        | None -> None
        | Some pos ->
            (* same position in the slice and in the base table schema *)
            let base_col = (Schema.column_at base_schema pos).Schema.name in
            Context.indexes_on ctx ~table:f.Ast.table
            |> List.find_map (fun (idx : Context.index_def) ->
                   if
                     String.lowercase_ascii idx.Context.idx_column
                     = String.lowercase_ascii base_col
                   then Some (Index_probe { index = idx; value = v })
                   else None)
      in
      match e with
      | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Lit v)
      | Expr.Cmp (Expr.Eq, Expr.Lit v, Expr.Col c) ->
          probe c v
      | _ -> None)
    pushed

let build ctx frame ~where =
  let conjuncts =
    match where with None -> [] | Some e -> split_conjuncts e
  in
  let classified = List.map (classify frame) conjuncts in
  let pushed_for i =
    List.filter_map
      (function Pushed (j, e) when j = i -> Some e | _ -> None)
      classified
  in
  let deferred_for i =
    List.filter_map
      (function Deferred (j, e) when j = i -> Some e | _ -> None)
      classified
  in
  let edges_for i =
    List.filter_map
      (function
        | Edge { lo = _; lo_col; hi; hi_col } when hi = i -> Some (lo_col, hi_col)
        | _ -> None)
      classified
  in
  let sources =
    List.mapi
      (fun i ((f : Ast.from_item), table) ->
        let offset, slice = List.nth frame.slices i in
        let pushed = pushed_for i in
        let access =
          match probe_of_pushed ctx f (Table.schema table) slice pushed with
          | Some probe -> probe
          | None -> Seq_scan
        in
        let est_rows =
          float_of_int (Table.live_count table) *. conjuncts_selectivity pushed
        in
        { item = f; table; prefix = item_prefix f; offset; schema = slice;
          access; pushed; est_rows })
      frame.entries
  in
  match sources with
  | [] -> invalid_arg "Plan.build: empty FROM"
  | base :: rest ->
      (* left-deep, in FROM order (preserves the naive evaluator's output
         schema); the accumulated estimate picks each step's build side *)
      let _, rev_steps =
        List.fold_left
          (fun (acc_est, acc_steps) (i, (src : source)) ->
            let edges = edges_for i in
            let post = deferred_for i in
            let kind =
              match edges with
              | [] -> Nested
              | _ ->
                  Hash
                    {
                      left_cols = List.map fst edges;
                      right_cols = List.map snd edges;
                      (* build the smaller input *)
                      build_left = acc_est <= src.est_rows;
                    }
            in
            let join_sel =
              match edges with
              | [] -> 1.0
              | es -> Float.pow 0.10 (float_of_int (List.length es))
            in
            let est_rows =
              acc_est *. Float.max 1.0 src.est_rows *. join_sel
              *. conjuncts_selectivity post
            in
            (est_rows, { src; kind; post; est_rows } :: acc_steps))
          (Float.max 1.0 base.est_rows, [])
          (List.mapi (fun k src -> (k + 1, src)) rest)
      in
      { base; steps = List.rev rev_steps; schema = frame.schema;
        prefixes = frame.prefixes }

let out_est plan =
  match List.rev plan.steps with
  | [] -> plan.base.est_rows
  | last :: _ -> last.est_rows

module Schema = Bdbms_relation.Schema
module Expr = Bdbms_relation.Expr
module Value = Bdbms_relation.Value
module Table = Bdbms_relation.Table
module Disk = Bdbms_storage.Disk
module SStats = Bdbms_storage.Stats
module Obs = Bdbms_obs.Obs
module Metrics = Bdbms_obs.Metrics
module Tstats = Bdbms_stats.Table_stats
module Registry = Bdbms_stats.Registry

(* ------------------------------------------------------------ selectivity *)

(* Heuristic selectivities (textbook constants) — the fallback when a
   table has never been ANALYZEd; also used by the cost model's EXPLAIN
   estimates. *)
let rec selectivity = function
  | Expr.Cmp (Expr.Eq, _, _) -> 0.10
  | Expr.Cmp (Expr.Neq, _, _) -> 0.90
  | Expr.Cmp ((Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq), _, _) -> 0.30
  | Expr.Like _ -> 0.25
  | Expr.In_list (_, vs) -> Float.min 0.9 (0.10 *. float_of_int (List.length vs))
  | Expr.Is_null _ -> 0.05
  | Expr.And (a, b) -> selectivity a *. selectivity b
  | Expr.Or (a, b) ->
      let sa = selectivity a and sb = selectivity b in
      sa +. sb -. (sa *. sb)
  | Expr.Not a -> 1.0 -. selectivity a
  | Expr.Lit _ | Expr.Col _ | Expr.Arith _ | Expr.Concat _ -> 0.5

let conjuncts_selectivity es =
  List.fold_left (fun acc e -> acc *. selectivity e) 1.0 es

type est_src = Stats | Heuristic

let est_src_name = function Stats -> "stats" | Heuristic -> "heuristic"

(* One conjunct against one table: real statistics when the table was
   ANALYZEd and the expression shape is covered, heuristic constant
   otherwise. *)
let conjunct_selectivity ts ~schema e =
  match ts with
  | None -> selectivity e
  | Some ts -> (
      match Tstats.selectivity ts ~schema e with
      | Some s -> s
      | None -> selectivity e)

let conjuncts_selectivity_for ts ~schema es =
  List.fold_left (fun acc e -> acc *. conjunct_selectivity ts ~schema e) 1.0 es

(* ------------------------------------------------------------- relations *)

(* What a FROM item scans: a heap-backed catalog table, or a virtual
   relation (a sys.* introspection view) materialized at plan time.
   Virtual rels are small by construction — bounded rings and registry
   snapshots — so materializing them per statement is cheap and gives
   every engine path (naive/tuple, WHERE/JOIN/aggregate) the same rows. *)
type rel =
  | Base of Table.t
  | Virtual of {
      v_name : string;
      v_schema : Schema.t;
      v_rows : Bdbms_relation.Tuple.t array;
    }

let rel_name = function Base t -> Table.name t | Virtual v -> v.v_name
let rel_schema = function Base t -> Table.schema t | Virtual v -> v.v_schema

let rel_live_count = function
  | Base t -> Table.live_count t
  | Virtual v -> Array.length v.v_rows

(* --------------------------------------------------------------- the frame *)

type frame = {
  entries : (Ast.from_item * rel) list;
  schema : Schema.t;
  prefixes : string list;
  multi : bool;
  slices : (int * Schema.t) list;
}

(* The qualifier a query uses for this item's columns: its alias, or the
   table name with any [sys.] namespace stripped — [sys.metrics m] and
   bare [sys.metrics] both qualify as [m_...] / [metrics_...], since a
   dotted qualifier cannot appear in a column reference. *)
let item_prefix (f : Ast.from_item) =
  match f.Ast.table_alias with
  | Some a -> a
  | None -> (
      let t = f.Ast.table in
      match String.rindex_opt t '.' with
      | Some i -> String.sub t (i + 1) (String.length t - i - 1)
      | None -> t)

let frame entries =
  let multi = List.length entries > 1 in
  let prefixed =
    List.map
      (fun ((f : Ast.from_item), rel) ->
        let schema = rel_schema rel in
        if multi then
          let prefix = item_prefix f in
          Schema.rename_columns schema
            (List.map
               (fun c -> (c.Schema.name, prefix ^ "_" ^ c.Schema.name))
               (Schema.columns schema))
        else schema)
      entries
  in
  (* the canonical output schema is the fold of Schema.concat (which
     renames collisions), exactly as the naive evaluator builds it; each
     source owns a contiguous slice of it *)
  let schema =
    match prefixed with
    | [] -> invalid_arg "Plan.frame: empty FROM"
    | first :: rest -> List.fold_left Schema.concat first rest
  in
  let columns = Schema.columns schema in
  let slices =
    let rec go offset cols = function
      | [] -> []
      | s :: rest ->
          let arity = Schema.arity s in
          let rec split n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | c :: tl -> split (n - 1) (c :: acc) tl
            | [] -> invalid_arg "Plan.frame: slice underflow"
          in
          let mine, others = split arity [] cols in
          (offset, Schema.make mine) :: go (offset + arity) others rest
    in
    go 0 columns prefixed
  in
  {
    entries;
    schema;
    prefixes = List.map (fun (f, _) -> item_prefix f) entries;
    multi;
    slices;
  }

(* ---------------------------------------------------------------- the plan *)

type access =
  | Seq_scan
  | Index_probe of { index : Context.index_def; value : Value.t }

type source = {
  item : Ast.from_item;
  rel : rel;
  prefix : string;
  offset : int;
  schema : Schema.t;
  access : access;
  access_est : float;
  pushed : Expr.t list;
  est_rows : float;
  est_src : est_src;
}

type join_kind =
  | Hash of {
      left_cols : int list;
      left_acc_cols : int list;
      right_cols : int list;
      build_left : bool;
    }
  | Nested

type step = { src : source; kind : join_kind; post : Expr.t list; est_rows : float }

type t = {
  base : source;
  steps : step list;
  schema : Schema.t;
  prefixes : string list;
  order : int list;
  permuted : bool;
}

let rec split_conjuncts = function
  | Expr.And (a, b) -> split_conjuncts a @ split_conjuncts b
  | e -> [ e ]

(* Classification of one resolved conjunct against the source slices. *)
type classified =
  | Pushed of int * Expr.t
  | Edge of { lo : int; lo_col : int; hi : int; hi_col : int }
      (* equi-join edge, absolute column positions, [lo < hi] source order *)
  | Deferred of int list * Expr.t
      (* applied once every source in the (sorted) list has been joined *)

let classify frame conjunct =
  let source_of pos =
    let rec go i = function
      | [] -> invalid_arg "Plan.classify: position out of range"
      | (offset, slice) :: rest ->
          if pos < offset + Schema.arity slice then i else go (i + 1) rest
    in
    go 0 frame.slices
  in
  let positions =
    List.map (Schema.index_of_exn frame.schema) (Expr.columns_used conjunct)
  in
  let sources = List.sort_uniq compare (List.map source_of positions) in
  match (sources, conjunct) with
  | [], _ -> Pushed (0, conjunct) (* column-free predicate: cheapest at base *)
  | [ i ], _ -> Pushed (i, conjunct)
  | [ i; j ], Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
      let pa = Schema.index_of_exn frame.schema a
      and pb = Schema.index_of_exn frame.schema b in
      let sa = source_of pa in
      (* orient the edge so [lo] is the earlier FROM item *)
      if sa = i then Edge { lo = i; lo_col = pa; hi = j; hi_col = pb }
      else Edge { lo = i; lo_col = pb; hi = j; hi_col = pa }
  | is, _ -> Deferred (is, conjunct)

(* An equality [col = literal] usable as an index probe, in slice-local
   terms: the pushed conjuncts reference slice column names.  Returns the
   probing conjunct alongside the access path so the caller can estimate
   its selectivity. *)
let probe_of_pushed ctx (f : Ast.from_item) base_schema slice pushed =
  List.find_map
    (fun e ->
      let probe c v =
        match Schema.index_of slice c with
        | None -> None
        | Some pos ->
            (* same position in the slice and in the base table schema *)
            let base_col = (Schema.column_at base_schema pos).Schema.name in
            Context.indexes_on ctx ~table:f.Ast.table
            |> List.find_map (fun (idx : Context.index_def) ->
                   if
                     String.lowercase_ascii idx.Context.idx_column
                     = String.lowercase_ascii base_col
                   then Some (Index_probe { index = idx; value = v }, e)
                   else None)
      in
      match e with
      | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Lit v)
      | Expr.Cmp (Expr.Eq, Expr.Lit v, Expr.Col c) ->
          probe c v
      | _ -> None)
    pushed

let build ctx frame ~where =
  let conjuncts =
    match where with None -> [] | Some e -> split_conjuncts e
  in
  let classified = List.map (classify frame) conjuncts in
  let pushed_for i =
    List.filter_map
      (function Pushed (j, e) when j = i -> Some e | _ -> None)
      classified
  in
  let stats_for =
    List.map
      (fun ((_ : Ast.from_item), rel) ->
        Registry.find ctx.Context.tstats (rel_name rel))
      frame.entries
    |> Array.of_list
  in
  let sources =
    List.mapi
      (fun i ((f : Ast.from_item), rel) ->
        let ts = stats_for.(i) in
        let offset, slice = List.nth frame.slices i in
        let pushed = pushed_for i in
        let live = float_of_int (rel_live_count rel) in
        let est_rows = live *. conjuncts_selectivity_for ts ~schema:slice pushed in
        let access, access_est =
          match probe_of_pushed ctx f (rel_schema rel) slice pushed with
          | None -> (Seq_scan, live)
          | Some (probe, conjunct) ->
              let probe_sel =
                match ts with
                | None -> 0.10
                | Some ts -> (
                    match Tstats.selectivity ts ~schema:slice conjunct with
                    | Some s -> s
                    | None -> 0.10)
              in
              (* a probe fetching most of the table is worse than the
                 scan it would save *)
              if probe_sel > 0.5 then (Seq_scan, live)
              else (probe, live *. probe_sel)
        in
        let est_src = match ts with Some _ -> Stats | None -> Heuristic in
        { item = f; rel; prefix = item_prefix f; offset; schema = slice;
          access; access_est; pushed; est_rows; est_src })
      frame.entries
  in
  if sources = [] then invalid_arg "Plan.build: empty FROM";
  let srcs = Array.of_list sources in
  let nsrc = Array.length srcs in
  let all_edges =
    List.filter_map
      (function
        | Edge { lo; lo_col; hi; hi_col } -> Some (lo, lo_col, hi, hi_col)
        | _ -> None)
      classified
  in
  let deferreds =
    List.filter_map (function Deferred (is, e) -> Some (is, e) | _ -> None)
      classified
  in
  let all_stats = Array.for_all (fun s -> s.est_src = Stats) srcs in
  (* Join selectivity of one equi-edge: 1 / max(ndv_left, ndv_right)
     when both endpoint columns carry statistics, the 0.10 textbook
     constant otherwise. *)
  let edge_sel (lo, lo_col, hi, hi_col) =
    let ndv_of i col =
      match stats_for.(i) with
      | Some ts ->
          let local = col - srcs.(i).offset in
          if local >= 0 && local < Array.length ts.Tstats.columns then
            Some (Tstats.ndv ts.Tstats.columns.(local))
          else None
      | None -> None
    in
    match (ndv_of lo lo_col, ndv_of hi hi_col) with
    | Some a, Some b -> 1.0 /. Float.max 1.0 (Float.max a b)
    | _ -> 0.10
  in
  (* ------------------------------------------------------ join order *)
  let identity = List.init nsrc Fun.id in
  let order =
    if nsrc < 2 || not all_stats then identity
    else begin
      (* greedy bottom-up: start from the smallest filtered source, then
         repeatedly append the source minimizing the next intermediate
         estimate, preferring sources connected to the joined set by an
         equi-edge (avoids gratuitous cross products) *)
      let chosen = Array.make nsrc false in
      let start = ref 0 in
      for j = 1 to nsrc - 1 do
        if srcs.(j).est_rows < srcs.(!start).est_rows then start := j
      done;
      chosen.(!start) <- true;
      let acc_est = ref (Float.max 1.0 srcs.(!start).est_rows) in
      let order = ref [ !start ] in
      for _ = 2 to nsrc do
        let best = ref (-1) in
        let best_cost = ref infinity in
        let best_connected = ref false in
        for j = 0 to nsrc - 1 do
          if not chosen.(j) then begin
            let es =
              List.filter
                (fun (lo, _, hi, _) ->
                  (chosen.(lo) && hi = j) || (chosen.(hi) && lo = j))
                all_edges
            in
            let sel = List.fold_left (fun acc e -> acc *. edge_sel e) 1.0 es in
            let connected = es <> [] in
            let cost = !acc_est *. Float.max 1.0 srcs.(j).est_rows *. sel in
            let better =
              if connected && not !best_connected then true
              else if connected = !best_connected then cost < !best_cost
              else false
            in
            if !best < 0 || better then begin
              best := j;
              best_cost := cost;
              best_connected := connected
            end
          end
        done;
        chosen.(!best) <- true;
        acc_est := Float.max 1.0 !best_cost;
        order := !best :: !order
      done;
      List.rev !order
    end
  in
  let permuted = order <> identity in
  if permuted then begin
    SStats.record_plan_reordered (Disk.stats ctx.Context.disk);
    Metrics.inc ctx.Context.obs.Obs.plans_reordered_c
  end;
  (* --------------------------------------- steps along the join order *)
  (* accumulated-schema offset of each source: sum of the arities of the
     sources placed before it in join order *)
  let acc_offset = Array.make nsrc 0 in
  let running = ref 0 in
  List.iter
    (fun i ->
      acc_offset.(i) <- !running;
      running := !running + Schema.arity srcs.(i).schema)
    order;
  let joined = Array.make nsrc false in
  let base = srcs.(List.hd order) in
  joined.(List.hd order) <- true;
  let emitted = Array.make (List.length deferreds) false in
  let _, rev_steps =
    List.fold_left
      (fun (acc_est, acc_steps) j ->
        let src = srcs.(j) in
        (* edges connecting the new source to the already-joined set,
           oriented left = joined side, right = new source *)
        let edges =
          List.filter_map
            (fun (lo, lo_col, hi, hi_col) ->
              if joined.(lo) && hi = j then Some ((lo, lo_col), (hi, hi_col))
              else if joined.(hi) && lo = j then
                Some ((hi, hi_col), (lo, lo_col))
              else None)
            all_edges
        in
        joined.(j) <- true;
        (* deferred conjuncts that become evaluable at this step *)
        let post =
          List.concat
            (List.mapi
               (fun k (is, e) ->
                 if
                   (not emitted.(k))
                   && List.for_all (fun i -> joined.(i)) is
                 then begin
                   emitted.(k) <- true;
                   [ e ]
                 end
                 else [])
               deferreds)
        in
        let kind =
          match edges with
          | [] -> Nested
          | _ ->
              Hash
                {
                  left_cols = List.map (fun ((_, c), _) -> c) edges;
                  left_acc_cols =
                    List.map
                      (fun ((li, c), _) ->
                        acc_offset.(li) + (c - srcs.(li).offset))
                      edges;
                  right_cols = List.map (fun (_, (_, c)) -> c) edges;
                  (* build the smaller input *)
                  build_left = acc_est <= src.est_rows;
                }
        in
        let join_sel =
          match edges with
          | [] -> 1.0
          | es ->
              if all_stats then
                List.fold_left
                  (fun acc ((li, lc), (ri, rc)) ->
                    acc *. edge_sel (li, lc, ri, rc))
                  1.0 es
              else Float.pow 0.10 (float_of_int (List.length es))
        in
        let est_rows =
          acc_est *. Float.max 1.0 src.est_rows *. join_sel
          *. conjuncts_selectivity post
        in
        (est_rows, { src; kind; post; est_rows } :: acc_steps))
      (Float.max 1.0 base.est_rows, [])
      (List.tl order)
  in
  { base; steps = List.rev rev_steps; schema = frame.schema;
    prefixes = frame.prefixes; order; permuted }

let out_est plan =
  match List.rev plan.steps with
  | [] -> plan.base.est_rows
  | last :: _ -> last.est_rows

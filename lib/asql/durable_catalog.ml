module Clock = Bdbms_util.Clock
module Crc32 = Bdbms_util.Crc32
module Xml_lite = Bdbms_util.Xml_lite
module Pager = Bdbms_storage.Pager
module Heap_file = Bdbms_storage.Heap_file
module Catalog = Bdbms_relation.Catalog
module Table = Bdbms_relation.Table
module Schema = Bdbms_relation.Schema
module Value = Bdbms_relation.Value
module Tuple = Bdbms_relation.Tuple
module Manager = Bdbms_annotation.Manager
module Ann = Bdbms_annotation.Ann
module Ann_store = Bdbms_annotation.Ann_store
module Prov_store = Bdbms_provenance.Prov_store
module Tracker = Bdbms_dependency.Tracker
module Rule = Bdbms_dependency.Rule
module Rule_set = Bdbms_dependency.Rule_set
module Procedure = Bdbms_dependency.Procedure
module Dep_graph = Bdbms_dependency.Dep_graph
module Principal = Bdbms_auth.Principal
module Acl = Bdbms_auth.Acl
module Approval = Bdbms_auth.Approval

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

type index_info = { ix_name : string; ix_table : string; ix_column : string }

type components = {
  dc_clock : Clock.t;
  dc_catalog : Catalog.t;
  dc_ann : Manager.t;
  dc_prov : Prov_store.t;
  dc_tracker : Tracker.t;
  dc_principals : Principal.t;
  dc_acl : Acl.t;
  dc_approval : Approval.t;
}

let magic = "BCAT"
let version = 1

(* Record tags.  Append-only: retag nothing, add new tags at the end. *)
let tag_clock = 1
let tag_table = 2
let tag_ann_counter = 3
let tag_ann_table = 4
let tag_ann = 5
let tag_prov_tool = 6
let tag_user = 7
let tag_group = 8
let tag_membership = 9
let tag_grants = 10
let tag_rule = 11
let tag_instance = 12
let tag_outdated = 13
let tag_monitored = 14
let tag_approval_entry = 15
let tag_approval_next = 16
let tag_index = 17
let tag_table_stats = 18

(* ------------------------------------------------------------ writing *)

let add_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let add_u32 b n =
  add_u8 b n;
  add_u8 b (n lsr 8);
  add_u8 b (n lsr 16);
  add_u8 b (n lsr 24)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_bool b v = add_u8 b (if v then 1 else 0)

let add_opt b f = function
  | None -> add_u8 b 0
  | Some v ->
      add_u8 b 1;
      f v

let add_list b f l =
  add_u32 b (List.length l);
  List.iter f l

(* ------------------------------------------------------------ reading *)

type reader = { buf : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.buf then
    malformed "catalog record truncated at byte %d" r.pos

let u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u32 r =
  let a = u8 r in
  let b = u8 r in
  let c = u8 r in
  let d = u8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let str r =
  let len = u32 r in
  need r len;
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let bool r = u8 r <> 0

let opt r f = if u8 r = 0 then None else Some (f r)

let list r f =
  let n = u32 r in
  List.init n (fun _ -> f r)

(* ------------------------------------------------------- field codecs *)

let add_grantee b = function
  | Acl.User u ->
      add_u8 b 0;
      add_str b u
  | Acl.Group g ->
      add_u8 b 1;
      add_str b g

let grantee r =
  match u8 r with
  | 0 -> Acl.User (str r)
  | 1 -> Acl.Group (str r)
  | n -> malformed "unknown grantee kind %d" n

let privilege_tag = function
  | Acl.Select -> 0
  | Acl.Insert -> 1
  | Acl.Update -> 2
  | Acl.Delete -> 3

let privilege_of_tag = function
  | 0 -> Acl.Select
  | 1 -> Acl.Insert
  | 2 -> Acl.Update
  | 3 -> Acl.Delete
  | n -> malformed "unknown privilege %d" n

let add_operation b = function
  | Approval.Op_insert { table; row } ->
      add_u8 b 0;
      add_str b table;
      add_u32 b row
  | Approval.Op_update { table; row; col; old_value } ->
      add_u8 b 1;
      add_str b table;
      add_u32 b row;
      add_u32 b col;
      add_str b (Value.encode old_value)
  | Approval.Op_delete { table; row; old_tuple } ->
      add_u8 b 2;
      add_str b table;
      add_u32 b row;
      add_str b (Tuple.encode old_tuple)

let operation r =
  match u8 r with
  | 0 ->
      let table = str r in
      let row = u32 r in
      Approval.Op_insert { table; row }
  | 1 ->
      let table = str r in
      let row = u32 r in
      let col = u32 r in
      let old_value, _ = Value.decode (str r) ~pos:0 in
      Approval.Op_update { table; row; col; old_value }
  | 2 ->
      let table = str r in
      let row = u32 r in
      let old_tuple = Tuple.decode (str r) in
      Approval.Op_delete { table; row; old_tuple }
  | n -> malformed "unknown approval operation %d" n

let status_tag = function
  | Approval.Pending -> 0
  | Approval.Approved -> 1
  | Approval.Disapproved -> 2

let status_of_tag = function
  | 0 -> Approval.Pending
  | 1 -> Approval.Approved
  | 2 -> Approval.Disapproved
  | n -> malformed "unknown approval status %d" n

let add_cell b (c : Dep_graph.cell) =
  add_str b c.table;
  add_u32 b c.row;
  add_u32 b c.col

let cell r =
  let table = str r in
  let row = u32 r in
  let col = u32 r in
  Dep_graph.cell ~table ~row ~col

(* -------------------------------------------------------------- encode *)

let encode comps ~indexes ~stats =
  let out = Buffer.create 4096 in
  let count = ref 0 in
  let payload = Buffer.create 512 in
  let record tag fill =
    Buffer.clear payload;
    fill payload;
    let p = Buffer.contents payload in
    add_u8 out tag;
    add_u32 out (String.length p);
    Buffer.add_string out p;
    add_u32 out (Crc32.string p);
    incr count
  in
  record tag_clock (fun b -> add_u32 b (Clock.now comps.dc_clock));
  (* user tables: name, schema, heap pages, slot directory *)
  List.iter
    (fun name ->
      let tbl = Catalog.find_exn comps.dc_catalog name in
      record tag_table (fun b ->
          add_str b (Table.name tbl);
          add_list b
            (fun (c : Schema.column) ->
              add_str b c.name;
              add_str b (Value.type_name c.ty))
            (Schema.columns (Table.schema tbl));
          add_list b (add_u32 b) (Table.heap_pages tbl);
          add_list b
            (function
              | Table.Dead -> add_u8 b 0
              | Table.Live (rid : Heap_file.rid) ->
                  add_u8 b 1;
                  add_u32 b rid.page;
                  add_u32 b rid.slot)
            (Table.slots tbl)))
    (List.sort String.compare (Catalog.table_names comps.dc_catalog));
  record tag_ann_counter (fun b -> add_u32 b (Manager.id_counter comps.dc_ann));
  List.iter
    (fun (info : Manager.ann_table_info) ->
      record tag_ann_table (fun b ->
          add_str b info.ati_table;
          add_str b info.ati_name;
          add_u8 b (match info.ati_scheme with Ann_store.Cell -> 0 | Ann_store.Compact -> 1);
          add_bool b info.ati_indexed;
          add_str b (Ann.category_name info.ati_category);
          add_list b (add_u32 b) info.ati_heap_pages))
    (Manager.dump_tables comps.dc_ann);
  List.iter
    (fun (ann : Ann.t) ->
      record tag_ann (fun b ->
          add_str b ann.id;
          add_str b (Ann.body_string ann);
          add_str b (Ann.category_name ann.category);
          add_str b ann.author;
          add_u32 b ann.created_at;
          add_bool b ann.archived;
          add_opt b (add_u32 b) ann.archived_at))
    (Manager.dump_registry comps.dc_ann);
  List.iter
    (fun tool -> record tag_prov_tool (fun b -> add_str b tool))
    (Prov_store.tools comps.dc_prov);
  List.iter
    (fun u -> record tag_user (fun b -> add_str b u))
    (List.sort String.compare (Principal.users comps.dc_principals));
  List.iter
    (fun g -> record tag_group (fun b -> add_str b g))
    (Principal.groups comps.dc_principals);
  List.iter
    (fun (user, groups) ->
      if groups <> [] then
        record tag_membership (fun b ->
            add_str b user;
            add_list b (add_str b) groups))
    (Principal.memberships comps.dc_principals);
  List.iter
    (fun (table, entries) ->
      record tag_grants (fun b ->
          add_str b table;
          add_list b
            (fun (e : Acl.grant_entry) ->
              add_u8 b (privilege_tag e.privilege);
              add_grantee b e.grantee;
              add_opt b (fun cols -> add_list b (add_str b) cols) e.columns)
            entries))
    (Acl.dump_grants comps.dc_acl);
  List.iter
    (fun (rule : Rule.t) ->
      record tag_rule (fun b ->
          add_str b rule.id;
          add_bool b rule.derived;
          let attr (a : Rule.attr) =
            add_str b a.table;
            add_str b a.column
          in
          add_list b attr rule.sources;
          attr rule.target;
          add_list b
            (fun (p : Procedure.t) ->
              add_str b p.name;
              add_str b p.version;
              add_bool b p.invertible;
              match p.kind with
              | Procedure.Executable _ ->
                  add_bool b true;
                  add_str b ""
              | Procedure.Non_executable d ->
                  add_bool b false;
                  add_str b d)
            rule.chain))
    (Rule_set.rules (Tracker.rule_set comps.dc_tracker));
  let instances = ref [] in
  Dep_graph.iter_instances (Tracker.graph comps.dc_tracker) (fun i ->
      instances := i :: !instances);
  let instances =
    List.sort
      (fun (a : Dep_graph.instance) (b : Dep_graph.instance) ->
        compare
          (a.rule_id, a.target.table, a.target.row, a.target.col)
          (b.rule_id, b.target.table, b.target.row, b.target.col))
      !instances
  in
  List.iter
    (fun (i : Dep_graph.instance) ->
      record tag_instance (fun b ->
          add_str b i.rule_id;
          add_list b (add_cell b) i.sources;
          add_cell b i.target))
    instances;
  List.iter
    (fun (table, _) ->
      let cells = List.sort compare (Tracker.outdated_cells comps.dc_tracker ~table) in
      if cells <> [] then
        record tag_outdated (fun b ->
            add_str b table;
            add_list b
              (fun (row, col) ->
                add_u32 b row;
                add_u32 b col)
              cells))
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (Tracker.outdated_tables comps.dc_tracker));
  List.iter
    (fun (table, (config : Approval.config)) ->
      record tag_monitored (fun b ->
          add_str b table;
          add_opt b (fun cols -> add_list b (add_str b) cols) config.columns;
          add_grantee b config.approver))
    (Approval.dump_monitored comps.dc_approval);
  List.iter
    (fun (e : Approval.entry) ->
      record tag_approval_entry (fun b ->
          add_u32 b e.id;
          add_operation b e.operation;
          add_str b e.user;
          add_u32 b e.at;
          add_u8 b (status_tag e.status);
          add_opt b (add_str b) e.decided_by;
          add_opt b (add_u32 b) e.decided_at))
    (Approval.entries comps.dc_approval);
  record tag_approval_next (fun b -> add_u32 b (Approval.next_id comps.dc_approval));
  List.iter
    (fun ix ->
      record tag_index (fun b ->
          add_str b ix.ix_name;
          add_str b ix.ix_table;
          add_str b ix.ix_column))
    (List.sort (fun a b -> String.compare a.ix_name b.ix_name) indexes);
  (* optimizer statistics: one opaque versioned blob per analyzed table,
     produced by Bdbms_stats.Registry (already sorted by table name) *)
  List.iter
    (fun blob -> record tag_table_stats (fun b -> Buffer.add_string b blob))
    stats;
  let header = Buffer.create 12 in
  Buffer.add_string header magic;
  add_u32 header version;
  add_u32 header !count;
  Buffer.add_buffer header out;
  Buffer.to_bytes header

(* ------------------------------------------------------------- restore *)

let restore_table bp comps r =
  let name = str r in
  let columns =
    list r (fun r ->
        let cname = str r in
        let tyname = str r in
        match Value.type_of_name tyname with
        | Some ty -> { Schema.name = cname; ty }
        | None -> malformed "unknown column type %S" tyname)
  in
  let heap_pages = list r u32 in
  let slots =
    list r (fun r ->
        match u8 r with
        | 0 -> Table.Dead
        | 1 ->
            let page = u32 r in
            let slot = u32 r in
            Table.Live { Heap_file.page; slot }
        | n -> malformed "unknown slot kind %d" n)
  in
  let tbl = Table.restore bp ~name (Schema.make columns) ~heap_pages ~slots in
  Catalog.restore_table comps.dc_catalog tbl

let restore_ann_table comps r =
  let ati_table = str r in
  let ati_name = str r in
  let ati_scheme =
    match u8 r with
    | 0 -> Ann_store.Cell
    | 1 -> Ann_store.Compact
    | n -> malformed "unknown annotation scheme %d" n
  in
  let ati_indexed = bool r in
  let ati_category = Ann.category_of_name (str r) in
  let ati_heap_pages = list r u32 in
  Manager.restore_annotation_table comps.dc_ann
    { Manager.ati_table; ati_name; ati_scheme; ati_indexed; ati_category; ati_heap_pages }

let restore_ann comps r =
  let id = str r in
  let body = Xml_lite.parse (str r) in
  let category = Ann.category_of_name (str r) in
  let author = str r in
  let created_at = u32 r in
  let archived = bool r in
  let archived_at = opt r u32 in
  let ann = Ann.make ~id ~body ~category ~author ~created_at in
  (match archived_at with
  | Some at when archived -> Ann.archive ann ~at
  | _ -> if archived then Ann.archive ann ~at:created_at);
  Manager.restore_ann comps.dc_ann ann

let restore_rule comps r =
  let id = str r in
  let derived = bool r in
  let attr r =
    let table = str r in
    let column = str r in
    Rule.attr table column
  in
  let sources = list r attr in
  let target = attr r in
  let registry = Tracker.registry comps.dc_tracker in
  let chain =
    list r (fun r ->
        let name = str r in
        let version = str r in
        let invertible = bool r in
        let executable = bool r in
        let description = str r in
        match Procedure.Registry.find registry name with
        | Some p ->
            Procedure.set_version p version;
            p
        | None ->
            let description =
              if executable then "executable body unavailable after restart"
              else description
            in
            let p = Procedure.non_executable ~name ~description ~invertible () in
            Procedure.set_version p version;
            p)
  in
  match Tracker.add_rule comps.dc_tracker (Rule.restore ~id ~sources ~target ~chain ~derived) with
  | Ok () -> ()
  | Error e -> malformed "cannot restore rule %s: %s" id e

let restore_approval_entry comps r =
  let id = u32 r in
  let op = operation r in
  let user = str r in
  let at = u32 r in
  let status = status_of_tag (u8 r) in
  let decided_by = opt r str in
  let decided_at = opt r u32 in
  Approval.restore_entry comps.dc_approval ~id ~operation:op ~user ~at ~status
    ~decided_by ~decided_at

let restore bp comps blob =
  let buf = Bytes.to_string blob in
  let r = { buf; pos = 0 } in
  need r 12;
  if String.sub buf 0 4 <> magic then malformed "bad catalog magic";
  r.pos <- 4;
  let v = u32 r in
  if v <> version then malformed "unsupported catalog version %d" v;
  let count = u32 r in
  let indexes = ref [] in
  let stats = ref [] in
  for _ = 1 to count do
    let tag = u8 r in
    let len = u32 r in
    need r len;
    let payload = String.sub buf r.pos len in
    r.pos <- r.pos + len;
    let crc = u32 r in
    if crc <> Crc32.string payload land 0xFFFFFFFF then
      malformed "catalog record (tag %d) failed CRC verification" tag;
    let pr = { buf = payload; pos = 0 } in
    if tag = tag_clock then Clock.advance_to comps.dc_clock (u32 pr)
    else if tag = tag_table then restore_table bp comps pr
    else if tag = tag_ann_counter then Manager.restore_id_counter comps.dc_ann (u32 pr)
    else if tag = tag_ann_table then restore_ann_table comps pr
    else if tag = tag_ann then restore_ann comps pr
    else if tag = tag_prov_tool then Prov_store.register_tool comps.dc_prov (str pr)
    else if tag = tag_user then ignore (Principal.add_user comps.dc_principals (str pr))
    else if tag = tag_group then ignore (Principal.add_group comps.dc_principals (str pr))
    else if tag = tag_membership then begin
      let user = str pr in
      List.iter
        (fun group -> ignore (Principal.add_to_group comps.dc_principals ~user ~group))
        (list pr str)
    end
    else if tag = tag_grants then begin
      let table = str pr in
      let entries =
        list pr (fun r ->
            let privilege = privilege_of_tag (u8 r) in
            let g = grantee r in
            let columns = opt r (fun r -> list r str) in
            { Acl.privilege; grantee = g; columns })
      in
      Acl.restore_grants comps.dc_acl ~table entries
    end
    else if tag = tag_rule then restore_rule comps pr
    else if tag = tag_instance then begin
      let rule_id = str pr in
      let sources = list pr cell in
      let target = cell pr in
      Dep_graph.add_instance (Tracker.graph comps.dc_tracker)
        { Dep_graph.rule_id; sources; target }
    end
    else if tag = tag_outdated then begin
      let table = str pr in
      List.iter
        (fun (row, col) -> Tracker.restore_mark comps.dc_tracker ~table ~row ~col)
        (list pr (fun r ->
             let row = u32 r in
             let col = u32 r in
             (row, col)))
    end
    else if tag = tag_monitored then begin
      let table = str pr in
      let columns = opt pr (fun r -> list r str) in
      let approver = grantee pr in
      Approval.restore_monitored comps.dc_approval ~table
        { Approval.columns; approver }
    end
    else if tag = tag_approval_entry then restore_approval_entry comps pr
    else if tag = tag_approval_next then
      Approval.restore_next_id comps.dc_approval (u32 pr)
    else if tag = tag_index then begin
      let ix_name = str pr in
      let ix_table = str pr in
      let ix_column = str pr in
      indexes := { ix_name; ix_table; ix_column } :: !indexes
    end
    else if tag = tag_table_stats then stats := payload :: !stats
    (* else: record written by a newer engine — skip *)
  done;
  (List.rev !indexes, List.rev !stats, count)

module Expr = Bdbms_relation.Expr
module Value = Bdbms_relation.Value
module Ops = Bdbms_relation.Ops
module Ann_pred = Bdbms_annotation.Ann_pred
module Ann_store = Bdbms_annotation.Ann_store
module Acl = Bdbms_auth.Acl

type select_item =
  | Star
  | Item of {
      expr : item_expr;
      alias : string option;
      promote : string list;
    }

and item_expr =
  | Col_ref of string
  | Scalar of Expr.t
  | Aggregate of Ops.aggregate

type from_item = {
  table : string;
  table_alias : string option;
  ann_tables : string list option;
}

type order_dir = [ `Asc | `Desc ]

type select = {
  distinct : bool;
  items : select_item list;
  from : from_item list;
  where : Expr.t option;
  awhere : Ann_pred.t option;
  group_by : string list;
  having : Expr.t option;
  ahaving : Ann_pred.t option;
  filter : Ann_pred.t option;
  order_by : (string * order_dir) list;
  limit : int option;
  offset : int option;
}

type query =
  | Select of select
  | Union of query * query
  | Intersect of query * query
  | Except of query * query

type on_clause =
  | On_select of select
  | On_insert of { table : string; values : Value.t list list }
  | On_update of { table : string; sets : (string * Expr.t) list; where : Expr.t option }
  | On_delete of { table : string; where : Expr.t option }

type copy_format = Csv | Fasta

type statement =
  | Query of query
  | Explain of query
  | Explain_analyze of query
  | Create_table of { name : string; columns : (string * Value.ty) list }
  | Drop_table of string
  | Insert of { table : string; values : Value.t list list }
  | Update of { table : string; sets : (string * Expr.t) list; where : Expr.t option }
  | Delete of { table : string; where : Expr.t option }
  | Create_ann_table of {
      table : string;
      name : string;
      scheme : Ann_store.scheme option;
      category : string option;
      indexed : bool;
    }
  | Drop_ann_table of { table : string; name : string }
  | Add_annotation of {
      targets : (string * string) list;
      value : string;
      on : on_clause;
    }
  | Archive_annotation of {
      targets : (string * string) list;
      between : (int * int) option;
      on : select;
    }
  | Restore_annotation of {
      targets : (string * string) list;
      between : (int * int) option;
      on : select;
    }
  | Start_approval of {
      table : string;
      columns : string list option;
      approver : Acl.grantee;
    }
  | Stop_approval of { table : string; columns : string list option }
  | Approve of int
  | Disapprove of int
  | Show_pending of string option
  | Grant of { privilege : Acl.privilege; table : string; columns : string list option; grantee : Acl.grantee }
  | Revoke of { privilege : Acl.privilege; table : string; grantee : Acl.grantee }
  | Create_user of string
  | Create_group of string
  | Add_user_to_group of { user : string; group : string }
  | Create_dependency of {
      id : string;
      sources : (string * string) list;
      target : string * string;
      procedure : string;
    }
  | Link_dependency of { id : string; source_rows : int list; target_row : int }
  | Validate_cell of { table : string; row : int; column : string }
  | Create_index of { name : string; table : string; column : string }
  | Drop_index of string
  | Show_outdated of string
  | Show_dependencies
  | Show_provenance of { table : string; row : int; column : string; at : int option }
  | Show_tables
  | Describe of string
  | Copy_from of { table : string; path : string; format : copy_format }
  | Copy_to of { table : string; path : string; format : copy_format }
  | Analyze_stats of string option
      (** ANALYZE [table]: (re)build optimizer statistics; [None] = all tables *)

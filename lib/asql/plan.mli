(** SELECT planning: conjunct classification, predicate pushdown, access
    path selection, and left-deep join ordering.

    The planner takes the FROM list and a WHERE expression {e already
    resolved} against the canonical joined schema (the fold of
    [Schema.concat] over the per-table schemas, alias-prefixed for
    multi-table queries) and splits the WHERE into top-level conjuncts:

    - a conjunct touching a single table is {e pushed} below the join and
      evaluated during that table's scan;
    - an equality between columns of two different tables becomes a hash
      join key ({e edge});
    - everything else is {e deferred} to the earliest join step at which
      all its tables are available.

    Joins stay in FROM order (left-deep), so the output column order
    matches the naive evaluator's; each step with at least one edge runs
    as a hash join building on the estimated-smaller input, edge-less
    steps fall back to a block nested-loop cross product filtered by the
    deferred conjuncts.  Both the streaming executor and the cost model's
    EXPLAIN rendering consume this plan. *)

val selectivity : Bdbms_relation.Expr.t -> float
(** Heuristic predicate selectivity (equality 0.10, range 0.30, ...). *)

val conjuncts_selectivity : Bdbms_relation.Expr.t list -> float

type frame = {
  entries : (Ast.from_item * Bdbms_relation.Table.t) list;
  schema : Bdbms_relation.Schema.t;  (** canonical joined schema *)
  prefixes : string list;            (** alias/table qualifier per entry *)
  multi : bool;
  slices : (int * Bdbms_relation.Schema.t) list;
      (** per entry: column offset and slice of the joined schema *)
}

val frame : (Ast.from_item * Bdbms_relation.Table.t) list -> frame
(** Name-resolution frame for a FROM list (tables already looked up).
    @raise Invalid_argument on an empty list. *)

type access =
  | Seq_scan
  | Index_probe of { index : Context.index_def; value : Bdbms_relation.Value.t }
      (** fetch candidate rows from a secondary index for a pushed
          [col = literal] conjunct; the full pushed predicate is still
          applied to each candidate *)

type source = {
  item : Ast.from_item;
  table : Bdbms_relation.Table.t;
  prefix : string;
  offset : int;  (** first column of this table's slice in the joined schema *)
  schema : Bdbms_relation.Schema.t;  (** the slice *)
  access : access;
  pushed : Bdbms_relation.Expr.t list;
      (** single-table conjuncts, resolved against the slice schema *)
  est_rows : float;
}

type join_kind =
  | Hash of { left_cols : int list; right_cols : int list; build_left : bool }
      (** equi-join; columns are absolute joined-schema positions,
          pairwise.  [build_left] hashes the accumulated left input *)
  | Nested  (** no equi edge: block nested-loop cross product *)

type step = {
  src : source;
  kind : join_kind;
  post : Bdbms_relation.Expr.t list;
      (** deferred conjuncts that become evaluable after this step *)
  est_rows : float;
}

type t = {
  base : source;
  steps : step list;
  schema : Bdbms_relation.Schema.t;
  prefixes : string list;
}

val build : Context.t -> frame -> where:Bdbms_relation.Expr.t option -> t
(** Plan a FROM/WHERE pair.  [where] must already be resolved against
    [frame.schema] (use {!Resolve}); unresolvable queries should not
    reach the planner. *)

val out_est : t -> float
(** Estimated output rows of the full join tree. *)

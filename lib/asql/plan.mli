(** SELECT planning: conjunct classification, predicate pushdown, access
    path selection, and cost-based join ordering.

    The planner takes the FROM list and a WHERE expression {e already
    resolved} against the canonical joined schema (the fold of
    [Schema.concat] over the per-table schemas, alias-prefixed for
    multi-table queries) and splits the WHERE into top-level conjuncts:

    - a conjunct touching a single table is {e pushed} below the join and
      evaluated during that table's scan;
    - an equality between columns of two different tables becomes a hash
      join key ({e edge});
    - everything else is {e deferred} to the earliest join step at which
      all its tables are available.

    Selectivities come from the per-table statistics collected by
    [ANALYZE] ({!Bdbms_stats}) when available — MCV/histogram-based
    equality, range and LIKE estimates, and [1 / max(ndv, ndv)] join
    selectivity from the distinct sketches — and fall back to the
    textbook heuristic constants ({!selectivity}) for never-analyzed
    tables; each source records which world it was estimated in
    ({!est_src}), surfaced by EXPLAIN.

    Join order: when {e every} FROM table carries statistics and there
    are at least two of them, the planner picks a greedy bottom-up
    left-deep order (smallest filtered source first, then repeatedly the
    source minimizing the next intermediate estimate, preferring
    equi-edge-connected sources); otherwise joins stay in FROM order.
    When the chosen order differs from FROM order, [permuted] is set and
    the executor restores the canonical column order with one final
    projection, so results are indistinguishable from the FROM-order
    plan.  Each step with at least one edge runs as a hash join building
    on the estimated-smaller input, edge-less steps fall back to a block
    nested-loop cross product filtered by the deferred conjuncts.  Both
    the streaming executor and the cost model's EXPLAIN rendering
    consume this plan. *)

val selectivity : Bdbms_relation.Expr.t -> float
(** Heuristic predicate selectivity (equality 0.10, range 0.30, ...). *)

val conjuncts_selectivity : Bdbms_relation.Expr.t list -> float

type est_src = Stats | Heuristic
    (** Where an estimate came from: ANALYZE statistics or the fallback
        heuristic constants. *)

val est_src_name : est_src -> string
(** ["stats"] / ["heuristic"], as rendered by EXPLAIN. *)

val conjunct_selectivity :
  Bdbms_stats.Table_stats.t option ->
  schema:Bdbms_relation.Schema.t ->
  Bdbms_relation.Expr.t ->
  float
(** One conjunct's selectivity: statistics when available and the shape
    is covered, {!selectivity} otherwise. *)

val conjuncts_selectivity_for :
  Bdbms_stats.Table_stats.t option ->
  schema:Bdbms_relation.Schema.t ->
  Bdbms_relation.Expr.t list ->
  float

(** What a FROM item scans: a heap-backed catalog table, or a virtual
    relation — a [sys.*] introspection view materialized at plan time.
    Virtual rels are small by construction (bounded rings, registry
    snapshots), so every engine path sees the same immutable rows. *)
type rel =
  | Base of Bdbms_relation.Table.t
  | Virtual of {
      v_name : string;
      v_schema : Bdbms_relation.Schema.t;
      v_rows : Bdbms_relation.Tuple.t array;
    }

val rel_name : rel -> string
val rel_schema : rel -> Bdbms_relation.Schema.t
val rel_live_count : rel -> int

type frame = {
  entries : (Ast.from_item * rel) list;
  schema : Bdbms_relation.Schema.t;  (** canonical joined schema *)
  prefixes : string list;            (** alias/table qualifier per entry *)
  multi : bool;
  slices : (int * Bdbms_relation.Schema.t) list;
      (** per entry: column offset and slice of the joined schema *)
}

val frame : (Ast.from_item * rel) list -> frame
(** Name-resolution frame for a FROM list (relations already looked up).
    @raise Invalid_argument on an empty list. *)

val item_prefix : Ast.from_item -> string
(** The qualifier a query uses for this item's columns: its alias, or
    the table name with any [sys.] namespace stripped. *)

type access =
  | Seq_scan
  | Index_probe of { index : Context.index_def; value : Bdbms_relation.Value.t }
      (** fetch candidate rows from a secondary index for a pushed
          [col = literal] conjunct; the full pushed predicate is still
          applied to each candidate *)

type source = {
  item : Ast.from_item;
  rel : rel;
  prefix : string;
  offset : int;  (** first column of this table's slice in the joined schema *)
  schema : Bdbms_relation.Schema.t;  (** the slice *)
  access : access;
  access_est : float;
      (** rows the access path is expected to fetch (live rows for a
          scan, [live * eq-selectivity] for an index probe) *)
  pushed : Bdbms_relation.Expr.t list;
      (** single-table conjuncts, resolved against the slice schema *)
  est_rows : float;
  est_src : est_src;
      (** whether this source's estimates used real statistics *)
}

type join_kind =
  | Hash of {
      left_cols : int list;
          (** absolute joined-schema (FROM-order) positions, for EXPLAIN
              labels and projection pruning *)
      left_acc_cols : int list;
          (** the same keys as positions in the {e accumulated} schema
              (slices concatenated in join order) — what the executor
              keys the build side on; equals [left_cols] when the order
              is not permuted *)
      right_cols : int list;  (** absolute joined-schema positions *)
      build_left : bool;  (** hash the accumulated left input *)
    }  (** equi-join on pairwise key lists *)
  | Nested  (** no equi edge: block nested-loop cross product *)

type step = {
  src : source;
  kind : join_kind;
  post : Bdbms_relation.Expr.t list;
      (** deferred conjuncts that become evaluable after this step *)
  est_rows : float;
}

type t = {
  base : source;
  steps : step list;
  schema : Bdbms_relation.Schema.t;
      (** canonical FROM-order joined schema — {e not} permuted *)
  prefixes : string list;
  order : int list;
      (** join order as FROM indices; [0; 1; ...] when not permuted *)
  permuted : bool;
      (** the pipeline's accumulated column order differs from
          [schema]; the executor must project back to [schema]'s names
          before the SELECT tail *)
}

val build : Context.t -> frame -> where:Bdbms_relation.Expr.t option -> t
(** Plan a FROM/WHERE pair.  [where] must already be resolved against
    [frame.schema] (use {!Resolve}); unresolvable queries should not
    reach the planner.  Bumps the [plans_reordered] counter when the
    chosen order differs from FROM order. *)

val out_est : t -> float
(** Estimated output rows of the full join tree. *)

module Value = Bdbms_relation.Value
module Schema = Bdbms_relation.Schema
module Tuple = Bdbms_relation.Tuple
module Table = Bdbms_relation.Table
module Catalog = Bdbms_relation.Catalog
module Expr = Bdbms_relation.Expr
module Ops = Bdbms_relation.Ops
module Cursor = Bdbms_relation.Cursor
module Disk = Bdbms_storage.Disk
module Stats = Bdbms_storage.Stats
module Rle = Bdbms_util.Rle
module Xml = Bdbms_util.Xml_lite
module Ann = Bdbms_annotation.Ann
module Ann_store = Bdbms_annotation.Ann_store
module Manager = Bdbms_annotation.Manager
module Region = Bdbms_annotation.Region
module Propagate = Bdbms_annotation.Propagate
module Prov_record = Bdbms_provenance.Prov_record
module Prov_store = Bdbms_provenance.Prov_store
module Rule = Bdbms_dependency.Rule
module Rule_set = Bdbms_dependency.Rule_set
module Procedure = Bdbms_dependency.Procedure
module Tracker = Bdbms_dependency.Tracker
module Principal = Bdbms_auth.Principal
module Acl = Bdbms_auth.Acl
module Approval = Bdbms_auth.Approval
module Clock = Bdbms_util.Clock
module Timer = Bdbms_util.Timer
module Obs = Bdbms_obs.Obs
module Metrics = Bdbms_obs.Metrics
module Tstats = Bdbms_stats.Table_stats
module Stats_reg = Bdbms_stats.Registry

type outcome =
  | Rows of Propagate.t
  | Count of { affected : int; verb : string }
  | Message of string
  | Entries of Approval.entry list

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

module Cancel = Bdbms_util.Cancel

exception Read_only of string

exception View_read_only of string
(* a write statement targeted a [sys.*] system view *)

(* Statements that mutate the database (data writes or DDL) — the ones
   rejected in read-only degraded mode.  Keep in sync with the server's
   [Stmt_class.classify]; [Copy_to] exports to a file and stays allowed. *)
let is_write_stmt = function
  | Ast.Query _ | Ast.Explain _ | Ast.Explain_analyze _ | Ast.Show_pending _
  | Ast.Show_outdated _ | Ast.Show_dependencies | Ast.Show_provenance _
  | Ast.Show_tables | Ast.Describe _ | Ast.Copy_to _ ->
      false
  | _ -> true

(* Cooperative cancellation checkpoints: sources check once per
   [checkpoint_mask + 1] pulled tuples (or every batch).  A disarmed
   token wraps nothing, so the idle hot path pays a single branch per
   pipeline construction — E17 guards this at <5%. *)
let checkpoint_mask = 63

let checked_cursor (ctx : Context.t) cur =
  if not (Cancel.armed ctx.Context.cancel) then cur
  else begin
    let pulls = ref 0 in
    Cursor.make (Cursor.schema cur) (fun () ->
        incr pulls;
        if !pulls land checkpoint_mask = 0 then Cancel.check ctx.Context.cancel;
        Cursor.next cur)
  end

let checked_src (ctx : Context.t) (src : Vexec.src) =
  if not (Cancel.armed ctx.Context.cancel) then src
  else
    {
      src with
      Vexec.next =
        (fun () ->
          Cancel.check ctx.Context.cancel;
          src.Vexec.next ());
    }

(* Checkpoint hook for the materializing joins (naive oracle, annotated
   path): called once per considered pair, far more often than either
   input is scanned, so a runaway cross product still honours its
   deadline.  [None] while disarmed. *)
let cancel_hook (ctx : Context.t) =
  if not (Cancel.armed ctx.Context.cancel) then None
  else begin
    let n = ref 0 in
    Some
      (fun () ->
        incr n;
        if !n land checkpoint_mask = 0 then Cancel.check ctx.Context.cancel)
  end

let ok_or_fail = function Ok v -> v | Error e -> raise (Exec_error e)

(* crash-injection point for the recovery harness: fires inside DDL,
   after permission checks but before the catalog mutates *)
let ddl_hit (ctx : Context.t) =
  Bdbms_storage.Fault.hit (Disk.fault ctx.Context.disk) Bdbms_storage.Fault.Ddl

let find_table (ctx : Context.t) name =
  match Catalog.find ctx.catalog name with
  | Some t -> t
  | None -> fail "unknown table %s" name

(* What a FROM item scans: the catalog table, or a [sys.*] view
   materialized as an immutable virtual relation. *)
let find_rel (ctx : Context.t) ~user name =
  if Sysview.is_sys name then
    match Sysview.materialize ctx ~user name with
    | Some rel -> rel
    | None -> fail "unknown system view %s" name
  else Plan.Base (find_table ctx name)

(* The write statements a [sys.*] name can appear in; each fails with
   the typed {!View_read_only} before touching any engine state. *)
let sys_write_target = function
  | Ast.Insert { table; _ }
  | Ast.Update { table; _ }
  | Ast.Delete { table; _ }
  | Ast.Create_table { name = table; _ }
  | Ast.Drop_table table
  | Ast.Create_index { table; _ }
  | Ast.Copy_from { table; _ }
  | Ast.Create_ann_table { table; _ }
  | Ast.Drop_ann_table { table; _ }
  | Ast.Analyze_stats (Some table)
    when Sysview.is_sys table ->
      Some (String.lowercase_ascii table)
  | _ -> None

let check_acl (ctx : Context.t) ~user privilege ~table ?column () =
  if ctx.strict_acl && user <> Context.superuser then
    if not (Acl.allowed ctx.acl ~user privilege ~table ?column ()) then
      fail "user %s lacks %s on %s" user (Acl.privilege_name privilege) table

(* ------------------------------------------------------ name resolution *)

let resolve_expr = Resolve.map_expr

(* Resolver for a schema where columns may be referenced bare or as
   alias_column (the shared {!Resolve} rules), failing with the
   user-facing error on unknown/ambiguous references. *)
let make_resolver schema prefixes name =
  match Resolve.column schema ~prefixes name with
  | Resolve.Resolved n -> n
  | Resolve.Unknown -> fail "unknown column %s" name
  | Resolve.Ambiguous -> fail "ambiguous column %s" name

(* ----------------------------------------------------------------- scan *)

let outdated_ann (ctx : Context.t) ~table ~row ~col =
  Ann.make
    ~id:(Printf.sprintf "outdated:%s:%d:%d" table row col)
    ~body:
      (Xml.element "Annotation"
         [ Xml.text "outdated: this value needs re-verification" ])
    ~category:Ann.Quality ~author:"system" ~created_at:(Clock.now ctx.clock)

(* Annotated scan with system outdated annotations attached (Section 5);
   [only_rows] restricts to candidate row numbers from an index probe. *)
let scan_table (ctx : Context.t) table ~ann_tables ?only_rows () =
  let schema = Table.schema table in
  let arity = Schema.arity schema in
  let name = Table.name table in
  let stats = Disk.stats ctx.Context.disk in
  let source =
    match only_rows with
    | None -> Table.to_list table
    | Some rows ->
        List.sort_uniq compare rows
        |> List.filter_map (fun row ->
               Option.map (fun tuple -> (row, tuple)) (Table.get table row))
  in
  let seen = ref 0 in
  let rows =
    List.map
      (fun (row, tuple) ->
        incr seen;
        if !seen land checkpoint_mask = 0 then Cancel.check ctx.Context.cancel;
        Stats.record_ann_envelope stats;
        let anns =
          Array.init arity (fun col ->
              let user_anns =
                match ann_tables with
                | None -> []
                | Some names ->
                    let names = if names = [ "*" ] then None else Some names in
                    Manager.for_cell ctx.ann ~table_name:name ?ann_tables:names ~row ~col ()
              in
              if Tracker.is_outdated ctx.tracker ~table:name ~row ~col then
                user_anns @ [ outdated_ann ctx ~table:name ~row ~col ]
              else user_anns)
        in
        { Propagate.tuple; anns })
      source
  in
  { Propagate.schema; rows }

(* Annotated scan of any relation.  Virtual rows carry empty annotation
   envelopes: system views have no annotation tables (and no outdated
   marks), so both engines see identical, unadorned tuples. *)
let scan_rel (ctx : Context.t) rel ~ann_tables () =
  match rel with
  | Plan.Base table -> scan_table ctx table ~ann_tables ()
  | Plan.Virtual { v_name; v_schema; v_rows } ->
      if ann_tables <> None then
        fail "%s is a system view: annotation tables are not supported" v_name;
      let arity = Schema.arity v_schema in
      {
        Propagate.schema = v_schema;
        rows =
          List.map
            (fun tuple -> { Propagate.tuple; anns = Array.make arity [] })
            (Array.to_list v_rows);
      }

let prefix_schema prefix rowset =
  let renames =
    List.map (fun c -> (c.Schema.name, prefix ^ "_" ^ c.Schema.name))
      (Schema.columns rowset.Propagate.schema)
  in
  { rowset with Propagate.schema = Schema.rename_columns rowset.Propagate.schema renames }

(* ---------------------------------------------------- secondary indexes *)

let build_index (ctx : Context.t) (idx : Context.index_def) =
  let table = find_table ctx idx.Context.idx_table in
  let col = Schema.index_of_exn (Table.schema table) idx.Context.idx_column in
  let tree = Bdbms_index.Btree.create ctx.bp in
  Table.iter table (fun row tuple ->
      Bdbms_index.Btree.insert tree
        ~key:(Context.index_key (Tuple.get tuple col))
        ~value:row);
  idx.Context.tree <- tree;
  idx.Context.built <- true;
  idx.Context.dirty <- false

let fresh_index ctx (idx : Context.index_def) =
  if (not idx.Context.built) || idx.Context.dirty then build_index ctx idx;
  idx

(* incremental maintenance: only touch clean, built indexes *)
let index_note_insert ctx ~table ~row tuple =
  List.iter
    (fun (idx : Context.index_def) ->
      if idx.Context.built && not idx.Context.dirty then begin
        let tbl = find_table ctx table in
        let col = Schema.index_of_exn (Table.schema tbl) idx.Context.idx_column in
        Bdbms_index.Btree.insert idx.Context.tree
          ~key:(Context.index_key (Tuple.get tuple col))
          ~value:row
      end)
    (Context.indexes_on ctx ~table)

let index_note_update ctx ~table ~row ~column ~old_value ~new_value =
  List.iter
    (fun (idx : Context.index_def) ->
      if
        String.lowercase_ascii idx.Context.idx_column = String.lowercase_ascii column
        && idx.Context.built
        && not idx.Context.dirty
      then begin
        ignore
          (Bdbms_index.Btree.delete idx.Context.tree
             ~key:(Context.index_key old_value) ~value:row);
        Bdbms_index.Btree.insert idx.Context.tree
          ~key:(Context.index_key new_value)
          ~value:row
      end)
    (Context.indexes_on ctx ~table)

let index_note_delete ctx ~table ~row tuple =
  List.iter
    (fun (idx : Context.index_def) ->
      if idx.Context.built && not idx.Context.dirty then begin
        let tbl = find_table ctx table in
        let col = Schema.index_of_exn (Table.schema tbl) idx.Context.idx_column in
        ignore
          (Bdbms_index.Btree.delete idx.Context.tree
             ~key:(Context.index_key (Tuple.get tuple col))
             ~value:row)
      end)
    (Context.indexes_on ctx ~table)

(* When the dependency tracker re-derived cells, those writes bypassed the
   index maintenance above: mark the touched tables' indexes dirty. *)
let note_tracker_report ctx (report : Tracker.report) =
  List.iter
    (fun (c : Bdbms_dependency.Dep_graph.cell) ->
      Context.mark_indexes_dirty ctx ~table:c.Bdbms_dependency.Dep_graph.table)
    report.Tracker.recomputed


(* ----------------------------------------------------------- the SELECT *)

(* Tuple comparator for resolved ORDER BY specs. *)
let order_cmp schema specs =
  let indices =
    List.map (fun (name, dir) -> (Schema.index_of_exn schema name, dir)) specs
  in
  fun a b ->
    let rec go = function
      | [] -> 0
      | (i, dir) :: rest ->
          let c = Value.compare (Tuple.get a i) (Tuple.get b i) in
          let c = match dir with `Asc -> c | `Desc -> -c in
          if c <> 0 then c else go rest
    in
    go indices

(* ------------------------------------------------ EXPLAIN ANALYZE hooks *)

(* While an EXPLAIN ANALYZE statement executes, [ctx.analyze] holds an
   {!Analyze} recorder and the select paths build one node per plan
   operator — labels and estimate formulas mirror the {!Cost} EXPLAIN
   tree so the two render side by side — and meter each operator's
   cursor pulls (plain path) or materialized evaluation (annotated and
   naive paths) through it. *)

(* The access-path node(s) for one planned source: the scan itself, and
   a pushdown-WHERE node above it when the planner pushed conjuncts.
   Returns (scan, top); they are the same node when nothing was pushed. *)
let analyze_source_nodes (src : Plan.source) =
  let table_rows = float_of_int (Plan.rel_live_count src.Plan.rel) in
  let est_src = Plan.est_src_name src.Plan.est_src in
  let table = src.Plan.item.Ast.table in
  let scan =
    match src.Plan.access with
    | Plan.Seq_scan ->
        Analyze.node ~est_rows:table_rows ~est_src ~table
          (Printf.sprintf "SCAN %s" src.Plan.item.Ast.table)
    | Plan.Index_probe { index; value = _ } ->
        Analyze.node ~est_rows:src.Plan.access_est ~est_src ~table
          (Printf.sprintf "INDEX SCAN %s via %s(%s)" src.Plan.item.Ast.table
             index.Context.idx_name index.Context.idx_column)
  in
  match src.Plan.pushed with
  | [] -> (scan, scan)
  | es ->
      (* the estimates already folded the stats-aware selectivity in;
         display the implied ratio so the label matches [Cost]'s *)
      let sel =
        if table_rows > 0.0 then src.Plan.est_rows /. table_rows
        else Plan.conjuncts_selectivity es
      in
      let top =
        Analyze.node ~est_rows:src.Plan.est_rows ~est_src ~table
          ~children:[ scan ]
          (Printf.sprintf "WHERE (selectivity %.2f)" sel)
      in
      (scan, top)

(* The join node(s) for one plan step over the already-built left and
   right subtrees, with a post-join-WHERE node above when the step has
   deferred conjuncts. *)
let analyze_step_nodes schema acc_n (step : Plan.step) right_n =
  let post_sel = Plan.conjuncts_selectivity step.Plan.post in
  let join_rows =
    if post_sel > 0.0 then step.Plan.est_rows /. post_sel
    else step.Plan.est_rows
  in
  let join_label =
    match step.Plan.kind with
    | Plan.Hash { left_cols; left_acc_cols = _; right_cols; build_left } ->
        let col p = (Schema.column_at schema p).Schema.name in
        let keys =
          List.map2
            (fun l r -> Printf.sprintf "%s=%s" (col l) (col r))
            left_cols right_cols
        in
        Printf.sprintf "HASH JOIN (%s, build=%s)" (String.concat ", " keys)
          (if build_left then "left" else "right")
    | Plan.Nested -> "BLOCK NESTED-LOOP JOIN"
  in
  let jsrc =
    match (acc_n.Analyze.est_src, right_n.Analyze.est_src) with
    | Some "stats", Some "stats" -> "stats"
    | _ -> "heuristic"
  in
  let join_n =
    Analyze.node ~est_rows:join_rows ~est_src:jsrc ~children:[ acc_n; right_n ]
      join_label
  in
  match step.Plan.post with
  | [] -> (join_n, join_n)
  | es ->
      let top =
        Analyze.node ~est_rows:step.Plan.est_rows ~est_src:jsrc
          ~children:[ join_n ]
          (Printf.sprintf "POST-JOIN WHERE (selectivity %.2f)"
             (Plan.conjuncts_selectivity es))
      in
      (join_n, top)

(* Canonical-order restore for permuted plans: the pipeline's accumulated
   layout is the slices in join order, but every column keeps its (unique,
   possibly alias-prefixed) frame name, so one projection by the frame
   schema's names puts FROM order back before the shared tail runs. *)
let frame_names (plan : Plan.t) =
  List.map
    (fun (c : Schema.column) -> c.Schema.name)
    (Schema.columns plan.Plan.schema)

(* Materialized-path metering: evaluate [f] under [n], charging its rows
   and runtime to the node (no-op without a recorder). *)
let analyze_block an n f =
  match an with
  | None -> f ()
  | Some a ->
      let rs = Analyze.timed_block a n f in
      Analyze.record_rows n (List.length rs.Propagate.rows);
      rs

(* The materialized tail (everything finish_select does) as one node,
   which then becomes the recorded root. *)
let analyze_finish an input_n f =
  match an with
  | None -> f ()
  | Some a ->
      let n =
        Analyze.node
          ~children:(match input_n with Some c -> [ c ] | None -> [])
          "RESULT (awhere/group/project/order/limit)"
      in
      let r = Analyze.timed_block a n f in
      Analyze.record_rows n (List.length r.Propagate.rows);
      Analyze.set_root a n;
      r

(* Hash join over annotated tuples; key columns are positions local to
   each side.  Output tuples (and annotation arrays) are always
   [left ++ right] regardless of which side builds. *)
let hash_join_atuples ?on_pair stats ~build_left ~left_cols ~right_cols
    (a : Propagate.t) (b : Propagate.t) : Propagate.t =
  let hit = match on_pair with None -> ignore | Some f -> f in
  let schema = Schema.concat a.Propagate.schema b.Propagate.schema in
  let build_rows, probe_rows, build_cols, probe_cols =
    if build_left then (a.Propagate.rows, b.Propagate.rows, left_cols, right_cols)
    else (b.Propagate.rows, a.Propagate.rows, right_cols, left_cols)
  in
  let key (at : Propagate.atuple) cols = Cursor.join_key at.Propagate.tuple cols in
  let h = Hashtbl.create 256 in
  List.iter
    (fun at ->
      match key at build_cols with
      | Some k ->
          Stats.record_hash_build stats;
          Hashtbl.add h k at
      | None -> ())
    build_rows;
  let emit (pat : Propagate.atuple) (bat : Propagate.atuple) =
    if build_left then
      {
        Propagate.tuple = Array.append bat.Propagate.tuple pat.Propagate.tuple;
        anns = Array.append bat.Propagate.anns pat.Propagate.anns;
      }
    else
      {
        Propagate.tuple = Array.append pat.Propagate.tuple bat.Propagate.tuple;
        anns = Array.append pat.Propagate.anns bat.Propagate.anns;
      }
  in
  let rows =
    List.concat_map
      (fun pat ->
        hit ();
        Stats.record_hash_probe stats;
        match key pat probe_cols with
        | None -> []
        | Some k ->
            Hashtbl.find_all h k
            |> List.filter (fun bat ->
                   List.for_all2
                     (fun bc pc ->
                       Value.equal
                         (Tuple.get bat.Propagate.tuple bc)
                         (Tuple.get pat.Propagate.tuple pc))
                     build_cols probe_cols)
            (* find_all yields newest-first; rev_map restores build order *)
            |> List.rev_map (emit pat))
      probe_rows
  in
  { Propagate.schema; rows }

(* Projection pruning for the batch engine: the set of joined-schema
   columns a plain SELECT can reach at runtime.  Every runtime read is
   either a by-name [Schema.index_of] lookup of a resolved column name
   (filters, grouping, aggregate inputs, projection, ordering, scalar
   expressions) or a join-key position from the plan, so marking exactly
   those names and indices is sound: a pruned column's garbage vector
   slots may ride along inside intermediate tuples, but projection drops
   them before any output and nothing ever looks at them by name.
   Returns [None] — decode everything — whenever pruning cannot be
   proven: SELECT *, a frame with duplicate column names (a by-name
   lookup could land on a different index than the plan's), or any name
   that does not resolve against the frame (aliases of computed columns,
   HAVING over aggregate outputs). *)
let needed_frame_cols (plan : Plan.t) (sel : Ast.select) =
  let schema = plan.Plan.schema in
  let arity = Schema.arity schema in
  if List.exists (function Ast.Star -> true | _ -> false) sel.Ast.items then
    None
  else if
    (* first-match name lookup must be injective over the frame *)
    List.exists
      (fun (i, (c : Schema.column)) -> Schema.index_of schema c.Schema.name <> Some i)
      (List.mapi (fun i c -> (i, c)) (Schema.columns schema))
  then None
  else
    match
      let resolve = make_resolver schema plan.Plan.prefixes in
      let needed = Array.make arity false in
      let mark_name n =
        match Schema.index_of schema n with
        | Some i -> needed.(i) <- true
        | None -> raise Exit
      in
      let rec mark_expr = function
        | Expr.Col n -> mark_name n
        | Expr.Lit _ -> ()
        | Expr.Cmp (_, a, b)
        | Expr.And (a, b)
        | Expr.Or (a, b)
        | Expr.Arith (_, a, b)
        | Expr.Concat (a, b) ->
            mark_expr a;
            mark_expr b
        | Expr.Not a | Expr.Like (a, _) | Expr.In_list (a, _) | Expr.Is_null a
          ->
            mark_expr a
      in
      let mark_raw c = mark_name (resolve c) in
      let mark_source (src : Plan.source) =
        List.iter mark_expr src.Plan.pushed
      in
      mark_source plan.Plan.base;
      List.iter
        (fun (step : Plan.step) ->
          mark_source step.Plan.src;
          List.iter mark_expr step.Plan.post;
          match step.Plan.kind with
          | Plan.Hash { left_cols; right_cols; _ } ->
              List.iter (fun i -> needed.(i) <- true) left_cols;
              List.iter (fun i -> needed.(i) <- true) right_cols
          | Plan.Nested -> raise Exit (* tuple fallback; no pruning *))
        plan.Plan.steps;
      Option.iter (fun e -> mark_expr (resolve_expr resolve e)) sel.Ast.where;
      List.iter mark_raw sel.Ast.group_by;
      Option.iter
        (fun e -> List.iter mark_raw (Expr.columns_used e))
        sel.Ast.having;
      List.iter (fun (c, _) -> mark_raw c) sel.Ast.order_by;
      List.iter
        (function
          | Ast.Star -> raise Exit (* excluded above *)
          | Ast.Item { expr; promote; _ } -> (
              List.iter mark_raw promote;
              match expr with
              | Ast.Col_ref c -> mark_raw c
              | Ast.Scalar e -> mark_expr (resolve_expr resolve e)
              | Ast.Aggregate agg ->
                  Option.iter mark_raw (Ops.agg_column agg)))
        sel.Ast.items;
      needed
    with
    | exception _ -> None
    | needed -> if Array.for_all Fun.id needed then None else Some needed

let rec exec_query (ctx : Context.t) ~user (q : Ast.query) : Propagate.t =
  match q with
  | Ast.Select sel -> exec_select ctx ~user sel
  | Ast.Union (a, b) -> exec_compound ctx ~user "UNION" Propagate.union a b
  | Ast.Intersect (a, b) ->
      exec_compound ctx ~user "INTERSECT" Propagate.intersect a b
  | Ast.Except (a, b) -> exec_compound ctx ~user "EXCEPT" Propagate.except a b

(* Compound queries under EXPLAIN ANALYZE: each side's recorder root is
   captured and reparented under a combining node, mirroring [Cost]. *)
and exec_compound ctx ~user label combine a b =
  match ctx.Context.analyze with
  | None -> combine (exec_query ctx ~user a) (exec_query ctx ~user b)
  | Some an ->
      let side q =
        let rs = exec_query ctx ~user q in
        let n = Analyze.root an in
        (rs, n)
      in
      let ra, na = side a in
      let rb, nb = side b in
      let children = List.filter_map Fun.id [ na; nb ] in
      let node = Analyze.node ~children label in
      let out = Analyze.timed_block an node (fun () -> combine ra rb) in
      Analyze.record_rows node (Propagate.row_count out);
      Analyze.set_root an node;
      out

(* Top-level equality conjuncts col = literal of a WHERE expression. *)
and equality_conjuncts expr =
  match expr with
  | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Lit v)
  | Expr.Cmp (Expr.Eq, Expr.Lit v, Expr.Col c) ->
      [ (c, v) ]
  | Expr.And (a, b) -> equality_conjuncts a @ equality_conjuncts b
  | _ -> []

(* Does executing this SELECT require per-cell annotation envelopes?
   Plain queries stream bare tuples through cursors; only the annotation
   operators (and the system outdated warnings of Section 5, when any are
   pending) force the eager annotated representation. *)
and select_needs_anns (ctx : Context.t) (sel : Ast.select) =
  sel.Ast.awhere <> None
  || sel.Ast.ahaving <> None
  || sel.Ast.filter <> None
  || List.exists (fun (f : Ast.from_item) -> f.Ast.ann_tables <> None) sel.Ast.from
  || List.exists
       (function Ast.Item { promote = _ :: _; _ } -> true | _ -> false)
       sel.Ast.items
  || List.exists
       (fun (f : Ast.from_item) ->
         Tracker.has_outdated ctx.Context.tracker ~table:f.Ast.table)
       sel.Ast.from

and exec_select ctx ~user (sel : Ast.select) : Propagate.t =
  if sel.Ast.from = [] then fail "FROM clause is required";
  List.iter
    (fun (f : Ast.from_item) ->
      (* privileged views expose other users' sessions and SQL text, so
         they require a grant (or admin) even outside strict-ACL mode *)
      if Sysview.is_privileged f.Ast.table
         && user <> Context.superuser
         && not (Acl.allowed ctx.Context.acl ~user Acl.Select ~table:f.Ast.table ())
      then
        fail "user %s lacks SELECT on %s (privileged system view)" user
          f.Ast.table
      else check_acl ctx ~user Acl.Select ~table:f.Ast.table ())
    sel.Ast.from;
  match ctx.Context.exec_mode with
  | `Naive -> exec_select_naive ctx ~user sel
  | (`Tuple | `Batch) as mode ->
      let entries =
        List.map
          (fun (f : Ast.from_item) -> (f, find_rel ctx ~user f.Ast.table))
          sel.Ast.from
      in
      let frame = Plan.frame entries in
      let resolve = make_resolver frame.Plan.schema frame.Plan.prefixes in
      (* resolve the WHERE up front (same errors as the naive evaluator),
         then let the planner classify its conjuncts *)
      let where =
        Obs.span ctx.Context.obs "resolve" (fun () ->
            Option.map (resolve_expr resolve) sel.Ast.where)
      in
      let plan =
        Obs.span ctx.Context.obs "plan" (fun () -> Plan.build ctx frame ~where)
      in
      if select_needs_anns ctx sel then begin
        (* annotation envelopes force the tuple-at-a-time representation *)
        if mode = `Batch then
          Stats.record_batch_fallback (Disk.stats ctx.Context.disk);
        exec_select_annotated ctx plan sel
      end
      else if mode = `Batch then exec_select_batch ctx plan sel
      else exec_select_plain ctx plan sel

(* The naive reference evaluator: materialize every scan with its
   annotations, cross-product the FROM list, then filter.  Kept verbatim
   (minus index probing) as the semantic oracle the equivalence tests run
   the pipelined engine against. *)
and exec_select_naive ctx ~user (sel : Ast.select) : Propagate.t =
  let an = ctx.Context.analyze in
  let multi = List.length sel.Ast.from > 1 in
  let scans =
    List.map
      (fun (f : Ast.from_item) ->
        let rel = find_rel ctx ~user f.Ast.table in
        let n =
          Analyze.node
            ~est_rows:(float_of_int (Plan.rel_live_count rel))
            (Printf.sprintf "SCAN %s" f.Ast.table)
        in
        let rs =
          analyze_block an n (fun () ->
              let rs = scan_rel ctx rel ~ann_tables:f.Ast.ann_tables () in
              if multi then prefix_schema (Plan.item_prefix f) rs else rs)
        in
        (rs, n))
      sel.Ast.from
  in
  let joined, joined_n =
    match scans with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun (acc, acc_n) (rs, rs_n) ->
            let n =
              Analyze.node
                ~est_rows:(acc_n.Analyze.est_rows *. rs_n.Analyze.est_rows)
                ~children:[ acc_n; rs_n ] "NESTED-LOOP JOIN"
            in
            ( analyze_block an n (fun () ->
                  Propagate.join ?on_pair:(cancel_hook ctx) acc rs
                    ~on:(Expr.Lit (Value.VBool true))),
              n ))
          first rest
  in
  let prefixes = List.map Plan.item_prefix sel.Ast.from in
  let resolve = make_resolver joined.Propagate.schema prefixes in
  let filtered, filtered_n =
    match sel.Ast.where with
    | None -> (joined, joined_n)
    | Some e ->
        let sel_f = Plan.selectivity e in
        let n =
          Analyze.node
            ~est_rows:(joined_n.Analyze.est_rows *. sel_f)
            ~children:[ joined_n ]
            (Printf.sprintf "WHERE (selectivity %.2f)" sel_f)
        in
        (analyze_block an n (fun () -> Propagate.select joined (resolve_expr resolve e)), n)
  in
  analyze_finish an (Some filtered_n) (fun () -> finish_select sel filtered prefixes)

(* Pipelined execution over annotated tuples: per-source pushdown, hash
   joins carrying annotation arrays, then the shared materialized tail. *)
and exec_select_annotated ctx (plan : Plan.t) (sel : Ast.select) : Propagate.t =
  Obs.span ctx.Context.obs "annotation.propagate" @@ fun () ->
  let stats = Disk.stats ctx.Context.disk in
  let an = ctx.Context.analyze in
  let source_atuples (src : Plan.source) =
    let nodes =
      match an with None -> None | Some _ -> Some (analyze_source_nodes src)
    in
    let scan () =
      let rs =
        let ann_tables = src.Plan.item.Ast.ann_tables in
        match (src.Plan.access, src.Plan.rel) with
        | Plan.Seq_scan, rel -> scan_rel ctx rel ~ann_tables ()
        | Plan.Index_probe { index; value }, Plan.Base table ->
            let idx = fresh_index ctx index in
            Stats.record_index_probe stats;
            let rows =
              Bdbms_index.Btree.search idx.Context.tree (Context.index_key value)
            in
            scan_table ctx table ~ann_tables ~only_rows:rows ()
        | Plan.Index_probe _, Plan.Virtual _ ->
            assert false (* no indexes exist over virtual relations *)
      in
      { rs with Propagate.schema = src.Plan.schema }
    in
    let pushed rs =
      List.fold_left
        (fun rs e ->
          let before = Propagate.row_count rs in
          let rs = Propagate.select rs e in
          for _ = 1 to before - Propagate.row_count rs do
            Stats.record_pushdown_prune stats
          done;
          rs)
        rs src.Plan.pushed
    in
    match nodes with
    | None -> (pushed (scan ()), None)
    | Some (scan_n, top_n) ->
        let rs = analyze_block an scan_n scan in
        let rs =
          if top_n == scan_n then pushed rs
          else analyze_block an top_n (fun () -> pushed rs)
        in
        (rs, Some top_n)
  in
  let joined, joined_n =
    List.fold_left
      (fun (acc, acc_n) (step : Plan.step) ->
        let right, right_n = source_atuples step.Plan.src in
        let join () =
          match step.Plan.kind with
          | Plan.Hash { left_cols = _; left_acc_cols; right_cols; build_left }
            ->
              let off = step.Plan.src.Plan.offset in
              hash_join_atuples ?on_pair:(cancel_hook ctx) stats ~build_left
                ~left_cols:left_acc_cols
                ~right_cols:(List.map (fun c -> c - off) right_cols)
                acc right
          | Plan.Nested ->
              Propagate.join ?on_pair:(cancel_hook ctx) acc right
                ~on:(Expr.Lit (Value.VBool true))
        in
        match (acc_n, right_n) with
        | Some acc_n, Some right_n ->
            let join_n, top_n =
              analyze_step_nodes plan.Plan.schema acc_n step right_n
            in
            let rs = analyze_block an join_n join in
            let rs =
              if top_n == join_n then
                List.fold_left Propagate.select rs step.Plan.post
              else
                analyze_block an top_n (fun () ->
                    List.fold_left Propagate.select rs step.Plan.post)
            in
            (rs, Some top_n)
        | _ -> (List.fold_left Propagate.select (join ()) step.Plan.post, None))
      (source_atuples plan.Plan.base)
      plan.Plan.steps
  in
  let joined =
    if plan.Plan.permuted then Propagate.project joined (frame_names plan)
    else joined
  in
  analyze_finish an joined_n (fun () -> finish_select sel joined plan.Plan.prefixes)

(* Pipelined execution over bare tuples (no annotation operators in the
   query, no outdated marks): volcano cursors end to end, the [Propagate]
   envelope is attached only to the final result. *)
and exec_select_plain ctx (plan : Plan.t) (sel : Ast.select) : Propagate.t =
  let cur, plan_n = tuple_pipeline ctx plan in
  let cur =
    if plan.Plan.permuted then Cursor.project cur (frame_names plan) else cur
  in
  plain_tail ctx plan sel (cur, plan_n)

(* Vectorized execution over column batches: same plan, same tail, but
   scans decode page-at-a-time into column vectors and WHERE/JOIN run
   over selection vectors.  Plan shapes the batch operators do not cover
   (block nested-loop joins) fall back to the tuple pipeline, counted in
   [Stats.batch_fallbacks]. *)
and exec_select_batch ctx (plan : Plan.t) (sel : Ast.select) : Propagate.t =
  match batch_pipeline ?need:(needed_frame_cols plan sel) ctx plan with
  | None ->
      Stats.record_batch_fallback (Disk.stats ctx.Context.disk);
      exec_select_plain ctx plan sel
  | Some (bsrc, plan_n) ->
      if plan.Plan.permuted then
        (* the batch tail operators consume columns positionally, so a
           reordered plan goes through the boxed cursor view with one
           restoring projection instead *)
        plain_tail ctx plan sel
          (Cursor.project (Vexec.to_cursor bsrc) (frame_names plan), plan_n)
      else
        (* [to_cursor] is lazy, so the tail's tuple-level stages (group-by,
           DISTINCT, LIMIT) pull batches on demand; the aggregate and
           top-k stages bypass it and consume [bsrc] directly. *)
        plain_tail ~batched:bsrc ctx plan sel (Vexec.to_cursor bsrc, plan_n)

(* The volcano operator pipeline for one plan: scans, pushed-down
   filters and joins, each metered under EXPLAIN ANALYZE.  Returns the
   top cursor and its recorder node. *)
and tuple_pipeline ctx (plan : Plan.t) =
  let stats = Disk.stats ctx.Context.disk in
  let an = ctx.Context.analyze in
  (* Wrap a cursor so every pull is timed and attributed to [n]. *)
  let meter n cur =
    match an with
    | None -> cur
    | Some a ->
        Cursor.make (Cursor.schema cur)
          (Analyze.meter_pull a n (fun () -> Cursor.next cur))
  in
  let source_cursor (src : Plan.source) =
    let base =
      match (src.Plan.access, src.Plan.rel) with
      | Plan.Seq_scan, Plan.Base table -> Cursor.scan table
      | Plan.Seq_scan, Plan.Virtual { v_schema; v_rows; _ } ->
          Cursor.of_list v_schema (Array.to_list v_rows)
      | Plan.Index_probe _, Plan.Virtual _ ->
          assert false (* no indexes exist over virtual relations *)
      | Plan.Index_probe { index; value }, Plan.Base table ->
          let idx = fresh_index ctx index in
          Stats.record_index_probe stats;
          let rows =
            Bdbms_index.Btree.search idx.Context.tree (Context.index_key value)
            |> List.sort_uniq compare
          in
          let remaining = ref rows in
          let rec pull () =
            match !remaining with
            | [] -> None
            | row :: rest -> (
                remaining := rest;
                match Table.get table row with
                | Some tuple -> Some tuple
                | None -> pull ())
          in
          Cursor.make (Table.schema table) pull
    in
    let base = checked_cursor ctx base in
    let cur = Cursor.rename base src.Plan.schema in
    let pushed cur =
      List.fold_left
        (fun cur e ->
          Cursor.select
            ~on_drop:(fun () -> Stats.record_pushdown_prune stats)
            cur e)
        cur src.Plan.pushed
    in
    match an with
    | None -> (pushed cur, None)
    | Some _ ->
        let scan_n, top_n = analyze_source_nodes src in
        let cur = pushed (meter scan_n cur) in
        let cur = if top_n == scan_n then cur else meter top_n cur in
        (cur, Some top_n)
  in
  let cur, plan_n =
    List.fold_left
      (fun (acc, acc_n) (step : Plan.step) ->
        let right, right_n = source_cursor step.Plan.src in
        let joined =
          match step.Plan.kind with
          | Plan.Hash { left_cols = _; left_acc_cols; right_cols; build_left }
            ->
              let off = step.Plan.src.Plan.offset in
              Cursor.hash_join ~stats ~build_left ~left_keys:left_acc_cols
                ~right_keys:(List.map (fun c -> c - off) right_cols)
                acc right
          | Plan.Nested ->
              (* a block join's output can dwarf its inputs; checkpoint
                 the joined stream, not just the leaf scans *)
              checked_cursor ctx (Cursor.block_join acc right)
        in
        match (acc_n, right_n) with
        | Some acc_n, Some right_n ->
            let join_n, top_n =
              analyze_step_nodes plan.Plan.schema acc_n step right_n
            in
            let cur =
              List.fold_left Cursor.select (meter join_n joined) step.Plan.post
            in
            let cur = if top_n == join_n then cur else meter top_n cur in
            (cur, Some top_n)
        | _ -> (List.fold_left Cursor.select joined step.Plan.post, None))
      (source_cursor plan.Plan.base)
      plan.Plan.steps
  in
  (cur, plan_n)

(* The batch-at-a-time mirror of [tuple_pipeline]: same plan walk, same
   recorder nodes (labels, estimates, tree shape), operators from
   {!Vexec}.  Returns [None] when a step needs an operator the batch
   path does not implement. *)
and batch_pipeline ?need ctx (plan : Plan.t) =
  let virtual_rel (src : Plan.source) =
    match src.Plan.rel with Plan.Virtual _ -> true | Plan.Base _ -> false
  in
  if
    List.exists
      (fun (s : Plan.step) -> s.Plan.kind = Plan.Nested)
      plan.Plan.steps
    (* sys.* views have no page-backed column batches: tuple fallback,
       counted in [Stats.batch_fallbacks] by the caller *)
    || virtual_rel plan.Plan.base
    || List.exists (fun (s : Plan.step) -> virtual_rel s.Plan.src) plan.Plan.steps
  then None
  else begin
    let stats = Disk.stats ctx.Context.disk in
    let an = ctx.Context.analyze in
    let batch_rows = ctx.Context.batch_rows in
    let meter n src =
      match an with None -> src | Some a -> Vexec.meter a n src
    in
    let filter ?on_drop src e = Vexec.filter ?on_drop src e in
    let source_batches (src : Plan.source) =
      let table =
        match src.Plan.rel with
        | Plan.Base t -> t
        | Plan.Virtual _ -> assert false (* excluded above *)
      in
      let base =
        match src.Plan.access with
        | Plan.Seq_scan ->
            (* this source's slice of the frame-wide pruning mask *)
            let need =
              Option.map
                (fun m ->
                  Array.sub m src.Plan.offset (Schema.arity src.Plan.schema))
                need
            in
            Vexec.scan ~batch_rows ?need table
        | Plan.Index_probe { index; value } ->
            let idx = fresh_index ctx index in
            Stats.record_index_probe stats;
            let rows =
              Bdbms_index.Btree.search idx.Context.tree
                (Context.index_key value)
              |> List.sort_uniq compare
            in
            Vexec.of_rows ~batch_rows table rows
      in
      let bsrc = Vexec.with_schema (checked_src ctx base) src.Plan.schema in
      let pushed bsrc =
        List.fold_left
          (fun bsrc e ->
            filter
              ~on_drop:(fun dropped ->
                for _ = 1 to dropped do
                  Stats.record_pushdown_prune stats
                done)
              bsrc e)
          bsrc src.Plan.pushed
      in
      match an with
      | None -> (pushed bsrc, None)
      | Some _ ->
          let scan_n, top_n = analyze_source_nodes src in
          let bsrc = pushed (meter scan_n bsrc) in
          let bsrc = if top_n == scan_n then bsrc else meter top_n bsrc in
          (bsrc, Some top_n)
    in
    let bsrc, plan_n =
      List.fold_left
        (fun (acc, acc_n) (step : Plan.step) ->
          let right, right_n = source_batches step.Plan.src in
          let joined =
            match step.Plan.kind with
            | Plan.Hash { left_cols = _; left_acc_cols; right_cols; build_left }
              ->
                let off = step.Plan.src.Plan.offset in
                Vexec.hash_join ~stats ~batch_rows ~build_left
                  ~left_keys:left_acc_cols
                  ~right_keys:(List.map (fun c -> c - off) right_cols)
                  acc right
            | Plan.Nested -> assert false (* excluded above *)
          in
          match (acc_n, right_n) with
          | Some acc_n, Some right_n ->
              let join_n, top_n =
                analyze_step_nodes plan.Plan.schema acc_n step right_n
              in
              let bsrc =
                List.fold_left
                  (fun bsrc e -> filter bsrc e)
                  (meter join_n joined) step.Plan.post
              in
              let bsrc = if top_n == join_n then bsrc else meter top_n bsrc in
              (bsrc, Some top_n)
          | _ ->
              ( List.fold_left (fun bsrc e -> filter bsrc e) joined
                  step.Plan.post,
                None ))
        (source_batches plan.Plan.base)
        plan.Plan.steps
    in
    (* hash joins can amplify: checkpoint the top of the pipeline too *)
    Some (checked_src ctx bsrc, plan_n)
  end

(* Everything from aggregation to LIMIT over the pipeline's top cursor —
   shared by the tuple and batch engines.  With [batched], the ungrouped
   aggregate and the pre-projection top-k consume the batch source
   directly through the typed {!Vexec} operators instead of the boxed
   cursor view. *)
and plain_tail ?batched ctx (plan : Plan.t) (sel : Ast.select)
    ((cur : Cursor.t), (plan_n : Analyze.node option)) : Propagate.t =
  let prefixes = plan.Plan.prefixes in
  let an = ctx.Context.analyze in
  (* Tail-stage recorder: each stage node stacks on the previous one, so
     the analyze tree mirrors the actual execution order (which may sort
     before projecting, unlike the estimate tree). *)
  let top_ref = ref plan_n in
  let cur_est = ref (match an with
    | None -> Float.nan
    | Some _ -> (
        match List.rev plan.Plan.steps with
        | step :: _ -> step.Plan.est_rows
        | [] -> plan.Plan.base.Plan.est_rows))
  in
  let push ?est label =
    (match est with Some e -> cur_est := e | None -> ());
    let n =
      Analyze.node ~est_rows:!cur_est
        ~children:(Option.to_list !top_ref)
        label
    in
    top_ref := Some n;
    n
  in
  (* streaming stage: meter the pulls *)
  let stage ?est label cur =
    match an with
    | None -> cur
    | Some a ->
        let n = push ?est label in
        Cursor.make (Cursor.schema cur)
          (Analyze.meter_pull a n (fun () -> Cursor.next cur))
  in
  (* eager stage: time the materializing computation as one block *)
  let stage_rs ?est label f =
    match an with
    | None -> f ()
    | Some a ->
        let n = push ?est label in
        let rs = Analyze.timed_block a n f in
        Analyze.record_rows n (List.length rs.Ops.rows);
        rs
  in
  let resolve = make_resolver plan.Plan.schema prefixes in
  let limit_n = Option.map (max 0) sel.Ast.limit in
  let offset_n = max 0 (Option.value sel.Ast.offset ~default:0) in
  let project_label =
    if sel.Ast.items = [ Ast.Star ] then "PROJECT *"
    else Printf.sprintf "PROJECT (%d items)" (List.length sel.Ast.items)
  in
  let has_aggregates =
    List.exists
      (function Ast.Item { expr = Ast.Aggregate _; _ } -> true | _ -> false)
      sel.Ast.items
  in
  let projected =
    if has_aggregates || sel.Ast.group_by <> [] then begin
      (* aggregate path *)
      let keys = List.map resolve sel.Ast.group_by in
      let aggs =
        List.filter_map
          (function
            | Ast.Item { expr = Ast.Aggregate agg; alias; _ } ->
                let agg =
                  match agg with
                  | Ops.Count_star -> Ops.Count_star
                  | Ops.Count c -> Ops.Count (resolve c)
                  | Ops.Sum c -> Ops.Sum (resolve c)
                  | Ops.Avg c -> Ops.Avg (resolve c)
                  | Ops.Min c -> Ops.Min (resolve c)
                  | Ops.Max c -> Ops.Max (resolve c)
                in
                Some (agg, Option.value alias ~default:(Ops.aggregate_name agg))
            | _ -> None)
          sel.Ast.items
      in
      List.iter
        (function
          | Ast.Item { expr = Ast.Col_ref c; _ } ->
              if not (List.mem (resolve c) keys) then
                fail "column %s must appear in GROUP BY" c
          | Ast.Item { expr = Ast.Scalar _; _ } ->
              fail "computed columns are not supported with GROUP BY"
          | Ast.Star -> fail "SELECT * is not supported with GROUP BY"
          | Ast.Item { expr = Ast.Aggregate _; _ } -> ())
        sel.Ast.items;
      let grouped =
        let label =
          if keys = [] then "AGGREGATE"
          else Printf.sprintf "GROUP BY %s" (String.concat "," sel.Ast.group_by)
        in
        stage_rs ~est:(Float.max 1.0 (!cur_est /. 10.0)) label (fun () ->
            if keys = [] then
              (* ungrouped aggregates: one streaming pass, constant
                 memory; on the batch path, typed per-column loops *)
              match batched with
              | Some bsrc -> Vexec.aggregate bsrc aggs
              | None -> Cursor.aggregate cur aggs
            else Ops.group_by (Cursor.to_rowset cur) ~keys ~aggs)
      in
      let grouped =
        match sel.Ast.having with
        | None -> grouped
        | Some e ->
            let r = make_resolver grouped.Ops.schema [] in
            Ops.select grouped (resolve_expr r e)
      in
      let out_names =
        List.map
          (function
            | Ast.Item { expr = Ast.Col_ref c; alias; _ } ->
                (resolve c, Option.value alias ~default:c)
            | Ast.Item { expr = Ast.Aggregate agg; alias; _ } ->
                let n = Option.value alias ~default:(Ops.aggregate_name agg) in
                (n, n)
            | _ -> assert false)
          sel.Ast.items
      in
      let rs =
        stage_rs project_label (fun () ->
            let projected = Ops.project grouped (List.map fst out_names) in
            let renames =
              List.filter (fun (src, dst) -> src <> dst) out_names
            in
            { projected with
              Ops.schema = Schema.rename_columns projected.Ops.schema renames })
      in
      Cursor.of_list rs.Ops.schema rs.Ops.rows
    end
    else begin
      (* scalar path (PROMOTE never reaches here: it needs annotations) *)
      match sel.Ast.items with
      | [ Ast.Star ] -> stage project_label cur
      | items ->
          let extended, proj_names =
            List.fold_left
              (fun (acc, names) item ->
                match item with
                | Ast.Star ->
                    fail "SELECT * cannot be mixed with other select items"
                | Ast.Item { expr = Ast.Col_ref c; alias; _ } ->
                    (acc, names @ [ (resolve c, Option.value alias ~default:c) ])
                | Ast.Item { expr = Ast.Scalar e; alias; _ } ->
                    let out =
                      match alias with
                      | Some a -> a
                      | None -> fail "computed columns need AS <name>"
                    in
                    let e =
                      resolve_expr (make_resolver (Cursor.schema acc) prefixes) e
                    in
                    (Cursor.extend acc ~name:out ~ty:Value.TString e,
                     names @ [ (out, out) ])
                | Ast.Item { expr = Ast.Aggregate _; _ } -> assert false)
              (cur, []) items
          in
          (* ORDER BY may reference pre-projection columns (classic SQL),
             so order before projecting; with a LIMIT and no DISTINCT a
             bounded heap replaces the full sort *)
          let extended =
            match sel.Ast.order_by with
            | [] -> extended
            | specs -> (
                let r = make_resolver (Cursor.schema extended) prefixes in
                let specs = List.map (fun (c, d) -> (r c, d)) specs in
                let schema = Cursor.schema extended in
                match limit_n with
                | Some n when not sel.Ast.distinct ->
                    let k = offset_n + n in
                    let rs =
                      stage_rs
                        ~est:(Float.min !cur_est (float_of_int k))
                        (Printf.sprintf "TOP-K (k=%d)" k)
                        (fun () ->
                          { Ops.schema;
                            rows =
                              (match batched with
                              | Some bsrc when extended == cur ->
                                  (* no computed columns: heap straight
                                     over the batches *)
                                  Vexec.top_k bsrc
                                    ~cmp:(order_cmp schema specs) ~k
                              | _ ->
                                  Cursor.top_k extended
                                    ~cmp:(order_cmp schema specs) ~k) })
                    in
                    Cursor.of_list rs.Ops.schema rs.Ops.rows
                | _ ->
                    let rs =
                      stage_rs "SORT" (fun () ->
                          Ops.order_by (Cursor.to_rowset extended) specs)
                    in
                    Cursor.of_list rs.Ops.schema rs.Ops.rows)
          in
          let projected = Cursor.project extended (List.map fst proj_names) in
          let renames = List.filter (fun (src, dst) -> src <> dst) proj_names in
          stage project_label
            (Cursor.rename projected
               (Schema.rename_columns (Cursor.schema projected) renames))
    end
  in
  let already_sorted = not (has_aggregates || sel.Ast.group_by <> []) in
  let result =
    if sel.Ast.distinct then
      (* 0.8 mirrors Cost.distinct_factor *)
      stage ~est:(!cur_est *. 0.8) "DISTINCT" (Cursor.distinct projected)
    else projected
  in
  let result =
    match sel.Ast.order_by with
    | [] -> result
    | _ when already_sorted && sel.Ast.items <> [ Ast.Star ] -> result
    | specs -> (
        let r = make_resolver (Cursor.schema result) [] in
        let specs = List.map (fun (c, d) -> (r c, d)) specs in
        let schema = Cursor.schema result in
        match limit_n with
        | Some n ->
            (* DISTINCT (if any) already ran, so top-k is safe here *)
            let k = offset_n + n in
            let rs =
              stage_rs
                ~est:(Float.min !cur_est (float_of_int k))
                (Printf.sprintf "TOP-K (k=%d)" k)
                (fun () ->
                  { Ops.schema;
                    rows = Cursor.top_k result ~cmp:(order_cmp schema specs) ~k })
            in
            Cursor.of_list rs.Ops.schema rs.Ops.rows
        | None ->
            let rs =
              stage_rs "SORT" (fun () ->
                  Ops.order_by (Cursor.to_rowset result) specs)
            in
            Cursor.of_list rs.Ops.schema rs.Ops.rows)
  in
  let result = if offset_n > 0 then Cursor.offset result offset_n else result in
  let result =
    match limit_n with None -> result | Some n -> Cursor.limit result n
  in
  let out = Propagate.of_rowset (Cursor.to_rowset result) in
  (match (an, !top_ref) with
  | Some a, Some n -> Analyze.set_root a n
  | _ -> ());
  out

(* Everything from AWHERE to LIMIT over a materialized annotated rowset —
   shared by the naive oracle and the annotated pipelined path. *)
and finish_select (sel : Ast.select) (filtered : Propagate.t) prefixes :
    Propagate.t =
  let resolve = make_resolver filtered.Propagate.schema prefixes in
  (* AWHERE *)
  let filtered =
    match sel.Ast.awhere with
    | None -> filtered
    | Some p -> Propagate.awhere filtered p
  in
  let has_aggregates =
    List.exists
      (function Ast.Item { expr = Ast.Aggregate _; _ } -> true | _ -> false)
      sel.Ast.items
  in
  let projected =
    if has_aggregates || sel.Ast.group_by <> [] then begin
      (* aggregate path *)
      let keys = List.map resolve sel.Ast.group_by in
      let aggs =
        List.filter_map
          (function
            | Ast.Item { expr = Ast.Aggregate agg; alias; _ } ->
                let agg =
                  match agg with
                  | Ops.Count_star -> Ops.Count_star
                  | Ops.Count c -> Ops.Count (resolve c)
                  | Ops.Sum c -> Ops.Sum (resolve c)
                  | Ops.Avg c -> Ops.Avg (resolve c)
                  | Ops.Min c -> Ops.Min (resolve c)
                  | Ops.Max c -> Ops.Max (resolve c)
                in
                Some (agg, Option.value alias ~default:(Ops.aggregate_name agg))
            | _ -> None)
          sel.Ast.items
      in
      (* every plain item must be a grouping key *)
      List.iter
        (function
          | Ast.Item { expr = Ast.Col_ref c; _ } ->
              if not (List.mem (resolve c) keys) then
                fail "column %s must appear in GROUP BY" c
          | Ast.Item { expr = Ast.Scalar _; _ } ->
              fail "computed columns are not supported with GROUP BY"
          | Ast.Star -> fail "SELECT * is not supported with GROUP BY"
          | Ast.Item { expr = Ast.Aggregate _; _ } -> ())
        sel.Ast.items;
      let grouped = Propagate.group_by filtered ~keys ~aggs in
      (* HAVING / AHAVING apply over the grouped schema *)
      let grouped =
        match sel.Ast.having with
        | None -> grouped
        | Some e ->
            let r = make_resolver grouped.Propagate.schema [] in
            Propagate.select grouped (resolve_expr r e)
      in
      let grouped =
        match sel.Ast.ahaving with
        | None -> grouped
        | Some p -> Propagate.awhere grouped p
      in
      (* reorder to the item order *)
      let out_names =
        List.map
          (function
            | Ast.Item { expr = Ast.Col_ref c; alias; _ } ->
                (resolve c, Option.value alias ~default:c)
            | Ast.Item { expr = Ast.Aggregate agg; alias; _ } ->
                let n = Option.value alias ~default:(Ops.aggregate_name agg) in
                (n, n)
            | _ -> assert false)
          sel.Ast.items
      in
      let projected = Propagate.project grouped (List.map fst out_names) in
      let renames =
        List.filter (fun (src, dst) -> src <> dst) out_names
      in
      { projected with
        Propagate.schema = Schema.rename_columns projected.Propagate.schema renames }
    end
    else begin
      (* scalar path *)
      match sel.Ast.items with
      | [ Ast.Star ] -> filtered
      | items ->
          (* promotes first (they reference the pre-projection schema) *)
          let promoted =
            List.fold_left
              (fun acc item ->
                match item with
                | Ast.Item { expr = Ast.Col_ref c; promote = _ :: _ as promote; _ } ->
                    Propagate.promote acc ~from:(List.map resolve promote)
                      ~to_:(resolve c)
                | Ast.Item { promote = _ :: _; _ } ->
                    fail "PROMOTE applies to plain column items"
                | _ -> acc)
              filtered items
          in
          (* computed columns *)
          let extended, proj_names =
            List.fold_left
              (fun (acc, names) item ->
                match item with
                | Ast.Star -> fail "SELECT * cannot be mixed with other select items"
                | Ast.Item { expr = Ast.Col_ref c; alias; _ } ->
                    (acc, names @ [ (resolve c, Option.value alias ~default:c) ])
                | Ast.Item { expr = Ast.Scalar e; alias; _ } ->
                    let out = match alias with
                      | Some a -> a
                      | None -> fail "computed columns need AS <name>"
                    in
                    let e = resolve_expr (make_resolver acc.Propagate.schema prefixes) e in
                    let plain = Propagate.to_rowset acc in
                    let plain' = Ops.extend plain ~name:out ~ty:Value.TString e in
                    (* recompute with annotations preserved: extend keeps
                       row order, so zip annotation arrays with an empty
                       set for the new column *)
                    let rows =
                      List.map2
                        (fun at tuple ->
                          { Propagate.tuple; anns = Array.append at.Propagate.anns [| [] |] })
                        acc.Propagate.rows plain'.Ops.rows
                    in
                    ( { Propagate.schema = plain'.Ops.schema; rows },
                      names @ [ (out, out) ] )
                | Ast.Item { expr = Ast.Aggregate _; _ } -> assert false)
              (promoted, []) items
          in
          (* ORDER BY may reference pre-projection columns (classic SQL), so
             sort before projecting: projection preserves row order *)
          let extended =
            match sel.Ast.order_by with
            | [] -> extended
            | specs ->
                let r = make_resolver extended.Propagate.schema prefixes in
                Propagate.order_by extended (List.map (fun (c, d) -> (r c, d)) specs)
          in
          let projected = Propagate.project extended (List.map fst proj_names) in
          let renames = List.filter (fun (src, dst) -> src <> dst) proj_names in
          { projected with
            Propagate.schema =
              Schema.rename_columns projected.Propagate.schema renames }
    end
  in
  let already_sorted = not (has_aggregates || sel.Ast.group_by <> []) in
  (* FILTER drops non-matching annotations but keeps every tuple *)
  let result =
    match sel.Ast.filter with
    | None -> projected
    | Some p -> Propagate.filter_anns projected p
  in
  let result = if sel.Ast.distinct then Propagate.distinct result else result in
  let result =
    match sel.Ast.order_by with
    | [] -> result
    | _ when already_sorted && sel.Ast.items <> [ Ast.Star ] -> result
    | specs ->
        let r = make_resolver result.Propagate.schema [] in
        Propagate.order_by result (List.map (fun (c, d) -> (r c, d)) specs)
  in
  let result =
    match sel.Ast.offset with
    | None -> result
    | Some n ->
        let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: r -> drop (k - 1) r in
        { result with Propagate.rows = drop n result.Propagate.rows }
  in
  match sel.Ast.limit with None -> result | Some n -> Propagate.limit result n

(* ------------------------------------------------------------------- DML *)

(* Interpret a literal against the column type (sequence types arrive as
   plain strings in SQL text). *)
let coerce value ty =
  match (value, ty) with
  | Value.VString s, Value.TDna -> Value.VDna s
  | Value.VString s, Value.TProtein -> Value.VProtein s
  | Value.VString s, Value.TRle -> (
      match Rle.of_string s with
      | r -> Value.VRle r
      | exception Invalid_argument _ -> Value.VRle (Rle.encode s))
  | Value.VInt n, Value.TFloat -> Value.VFloat (float_of_int n)
  | v, _ -> v

let record_local_prov (ctx : Context.t) ~table ~region ~operation =
  if ctx.auto_provenance then
    ignore
      (Prov_store.record ctx.prov ~table ~region
         ~record:
           (Prov_record.make ~operation ~actor:"system" ~at:(Clock.tick ctx.clock)))

(* Insert rows; returns the new row numbers. *)
let do_insert (ctx : Context.t) ~user ~table:table_name values =
  check_acl ctx ~user Acl.Insert ~table:table_name ();
  let table = find_table ctx table_name in
  let schema = Table.schema table in
  let rows =
    List.map
      (fun literals ->
        if List.length literals <> Schema.arity schema then
          fail "INSERT arity mismatch on %s" table_name;
        let tuple =
          Array.of_list
            (List.mapi
               (fun i v -> coerce v (Schema.column_at schema i).Schema.ty)
               literals)
        in
        let row = ok_or_fail (Table.insert table tuple) in
        index_note_insert ctx ~table:table_name ~row tuple;
        Stats_reg.note_insert ctx.Context.tstats table_name tuple;
        ignore (Approval.log_insert ctx.approval ~table:table_name ~row ~user);
        row)
      values
  in
  record_local_prov ctx ~table ~region:(Region.Rows rows)
    ~operation:Prov_record.Local_insert;
  rows

(* Matching live rows of a single table; a top-level equality on an
   indexed column narrows the scan to the index's candidates (the full
   predicate is still applied). *)
let matching_rows (ctx : Context.t) table where =
  let schema = Table.schema table in
  let table_name = Table.name table in
  let resolve = make_resolver schema [ table_name ] in
  let pred =
    match where with
    | None -> None
    | Some e -> Some (resolve_expr resolve e)
  in
  let candidates =
    match pred with
    | None -> None
    | Some p ->
        List.find_map
          (fun (c, v) ->
            if not (Schema.mem schema c) then None
            else
              Context.indexes_on ctx ~table:table_name
              |> List.find_map (fun (idx : Context.index_def) ->
                     if
                       String.lowercase_ascii idx.Context.idx_column
                       = String.lowercase_ascii c
                     then begin
                       let idx = fresh_index ctx idx in
                       Some
                         (Bdbms_index.Btree.search idx.Context.tree
                            (Context.index_key v))
                     end
                     else None))
          (equality_conjuncts p)
  in
  let keep tuple =
    match pred with None -> true | Some p -> Expr.eval_pred schema tuple p
  in
  match candidates with
  | Some rows ->
      List.sort_uniq compare rows
      |> List.filter_map (fun row ->
             match Table.get table row with
             | Some tuple when keep tuple -> Some (row, tuple)
             | _ -> None)
  | None ->
      Table.fold table ~init:[] ~f:(fun acc row tuple ->
          if keep tuple then (row, tuple) :: acc else acc)
      |> List.rev

(* Update; returns the (row, column-name) cells written. *)
let do_update (ctx : Context.t) ~user ~table:table_name sets where =
  let table = find_table ctx table_name in
  let schema = Table.schema table in
  let resolve = make_resolver schema [ table_name ] in
  let sets =
    List.map
      (fun (c, e) ->
        let c = resolve c in
        check_acl ctx ~user Acl.Update ~table:table_name ~column:c ();
        (c, Schema.index_of_exn schema c, resolve_expr resolve e))
      sets
  in
  let rows = matching_rows ctx table where in
  let touched = ref [] in
  List.iter
    (fun (row, tuple) ->
      List.iter
        (fun (cname, col, expr) ->
          let value =
            coerce (Expr.eval schema tuple expr) (Schema.column_at schema col).Schema.ty
          in
          let old_value = ok_or_fail (Table.update_cell table ~row ~col value) in
          index_note_update ctx ~table:table_name ~row ~column:cname ~old_value
            ~new_value:value;
          Stats_reg.note_update ctx.Context.tstats table_name ~col value;
          ignore
            (Approval.log_update ctx.approval ~table:table_name ~row ~col
               ~column_name:cname ~old_value ~user);
          note_tracker_report ctx
            (Tracker.on_cell_update ctx.tracker ~table:table_name ~row ~col);
          touched := (row, cname) :: !touched)
        sets)
    rows;
  let touched = List.rev !touched in
  if touched <> [] then
    record_local_prov ctx ~table
      ~region:(Region.Cells touched)
      ~operation:Prov_record.Local_update;
  touched

(* Delete; returns the (row, tuple) pairs removed. *)
let do_delete (ctx : Context.t) ~user ~table:table_name where =
  check_acl ctx ~user Acl.Delete ~table:table_name ();
  let table = find_table ctx table_name in
  let rows = matching_rows ctx table where in
  List.iter
    (fun (row, tuple) ->
      ignore (Table.delete table row);
      index_note_delete ctx ~table:table_name ~row tuple;
      Stats_reg.note_delete ctx.Context.tstats table_name tuple;
      ignore (Approval.log_delete ctx.approval ~table:table_name ~row ~old_tuple:tuple ~user);
      (* dependents of a deleted row cannot be recomputed: mark them *)
      let arity = Schema.arity (Table.schema table) in
      for col = 0 to arity - 1 do
        note_tracker_report ctx
          (Tracker.on_cell_update ctx.tracker ~table:table_name ~row ~col)
      done)
    rows;
  rows

(* -------------------------------------------------- annotation commands *)

let single_target_table targets =
  match List.sort_uniq compare (List.map (fun (t, _) -> String.lowercase_ascii t) targets) with
  | [ _ ] -> fst (List.hd targets)
  | _ -> fail "all annotation tables in one command must belong to one user table"

(* The region covered by an ON (SELECT ...): rows matching the WHERE, and
   the projected columns (all columns when the item list is [*]). *)
let region_of_select (ctx : Context.t) ~table_name (sel : Ast.select) =
  (match sel.Ast.from with
  | [ f ] when String.lowercase_ascii f.Ast.table = String.lowercase_ascii table_name -> ()
  | _ -> fail "the ON (SELECT ...) must select from %s only" table_name);
  let table = find_table ctx table_name in
  let schema = Table.schema table in
  let resolve = make_resolver schema [ table_name ] in
  let rows = List.map fst (matching_rows ctx table sel.Ast.where) in
  match sel.Ast.items with
  | [ Ast.Star ] -> Region.Rows rows
  | items ->
      let cols =
        List.map
          (function
            | Ast.Item { expr = Ast.Col_ref c; _ } -> resolve c
            | _ -> fail "the ON (SELECT ...) projection must list plain columns")
          items
      in
      Region.Cells (List.concat_map (fun row -> List.map (fun c -> (row, c)) cols) rows)

let parse_annotation_body value =
  match Xml.parse value with
  | doc -> doc
  | exception Xml.Parse_error _ -> Xml.element "Annotation" [ Xml.text value ]

let deleted_log_table (ctx : Context.t) table =
  let log_name = "_deleted_" ^ Table.name table in
  match Catalog.find ctx.catalog log_name with
  | Some t -> t
  | None ->
      ok_or_fail (Catalog.create_table ctx.catalog ~name:log_name (Table.schema table))

let do_add_annotation (ctx : Context.t) ~user targets value on =
  let table_name = single_target_table targets in
  let ann_tables = List.map snd targets in
  let body = parse_annotation_body value in
  let add ~table ~region =
    ok_or_fail (Manager.add ctx.ann ~table ~ann_tables ~body ~author:user ~region ())
  in
  match on with
  | Ast.On_select sel ->
      let region = region_of_select ctx ~table_name sel in
      let table = find_table ctx table_name in
      let ann = add ~table ~region in
      Message (Printf.sprintf "annotation %s added" ann.Ann.id)
  | Ast.On_insert { table; values } ->
      if String.lowercase_ascii table <> String.lowercase_ascii table_name then
        fail "ON (INSERT ...) must target %s" table_name;
      let rows = do_insert ctx ~user ~table values in
      let ann = add ~table:(find_table ctx table_name) ~region:(Region.Rows rows) in
      Message
        (Printf.sprintf "%d row(s) inserted, annotation %s added" (List.length rows)
           ann.Ann.id)
  | Ast.On_update { table; sets; where } ->
      if String.lowercase_ascii table <> String.lowercase_ascii table_name then
        fail "ON (UPDATE ...) must target %s" table_name;
      let cells = do_update ctx ~user ~table sets where in
      if cells = [] then Message "0 cells updated, no annotation added"
      else begin
        let ann =
          add ~table:(find_table ctx table_name) ~region:(Region.Cells cells)
        in
        Message
          (Printf.sprintf "%d cell(s) updated, annotation %s added" (List.length cells)
             ann.Ann.id)
      end
  | Ast.On_delete { table; where } ->
      if String.lowercase_ascii table <> String.lowercase_ascii table_name then
        fail "ON (DELETE ...) must target %s" table_name;
      let tbl = find_table ctx table in
      let log = deleted_log_table ctx tbl in
      let deleted = do_delete ctx ~user ~table where in
      let log_rows =
        List.map (fun (_, tuple) -> ok_or_fail (Table.insert log tuple)) deleted
      in
      (* the deleted tuples live on in the log table, annotated with the
         reason for their deletion (Section 3.2) *)
      if log_rows = [] then Message "0 rows deleted"
      else begin
        (* the annotation table must exist on the log table too *)
        List.iter
          (fun at ->
            if
              not
                (Manager.has_annotation_table ctx.ann ~table_name:(Table.name log)
                   ~name:at)
            then
              ignore (Manager.create_annotation_table ctx.ann ~table:log ~name:at ()))
          ann_tables;
        let ann = add ~table:log ~region:(Region.Rows log_rows) in
        Message
          (Printf.sprintf "%d row(s) deleted into %s, annotation %s added"
             (List.length log_rows) (Table.name log) ann.Ann.id)
      end

let do_archive_restore (ctx : Context.t) ~restore targets between sel =
  let table_name = single_target_table targets in
  let ann_tables = List.map snd targets in
  let region = region_of_select ctx ~table_name sel in
  let table = find_table ctx table_name in
  let f = if restore then Manager.restore else Manager.archive in
  let n = ok_or_fail (f ctx.ann ~table ~ann_tables ?between ~region ()) in
  Message
    (Printf.sprintf "%d annotation(s) %s" n (if restore then "restored" else "archived"))

(* ---------------------------------------------------------- bulk copy *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> fail "cannot open %s: %s" path e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let write_file path contents =
  match open_out_bin path with
  | exception Sys_error e -> fail "cannot write %s: %s" path e
  | oc ->
      output_string oc contents;
      close_out oc

(* a CSV field interpreted against a column type; empty means NULL *)
let value_of_field ty field =
  if field = "" then Value.VNull
  else
    match ty with
    | Value.TInt -> (
        match int_of_string_opt field with
        | Some n -> Value.VInt n
        | None -> fail "bad INT field %S" field)
    | Value.TFloat -> (
        match float_of_string_opt field with
        | Some f -> Value.VFloat f
        | None -> fail "bad FLOAT field %S" field)
    | Value.TBool -> (
        match String.lowercase_ascii field with
        | "true" | "t" | "1" -> Value.VBool true
        | "false" | "f" | "0" -> Value.VBool false
        | _ -> fail "bad BOOL field %S" field)
    | Value.TString -> Value.VString field
    | Value.TDna -> Value.VDna field
    | Value.TProtein -> Value.VProtein field
    | Value.TRle -> (
        match Rle.of_string field with
        | r -> Value.VRle r
        | exception Invalid_argument _ -> Value.VRle (Rle.encode field))

let do_copy_from ctx ~user ~table:table_name ~path ~format =
  let table = find_table ctx table_name in
  let schema = Table.schema table in
  let values =
    match format with
    | Ast.Csv -> (
        match Io_formats.parse_csv (read_file path) with
        | Error e -> fail "CSV parse error in %s: %s" path e
        | Ok rows ->
            List.map
              (fun fields ->
                if List.length fields <> Schema.arity schema then
                  fail "CSV row has %d fields, %s has %d columns"
                    (List.length fields) table_name (Schema.arity schema);
                List.mapi
                  (fun i f -> value_of_field (Schema.column_at schema i).Schema.ty f)
                  fields)
              rows)
    | Ast.Fasta -> (
        match Io_formats.parse_fasta (read_file path) with
        | Error e -> fail "FASTA parse error in %s: %s" path e
        | Ok records ->
            let arity = Schema.arity schema in
            if arity < 2 then fail "FASTA import needs at least (id, sequence) columns";
            List.map
              (fun (r : Io_formats.fasta_record) ->
                let seq_ty = (Schema.column_at schema (arity - 1)).Schema.ty in
                let seq = value_of_field seq_ty r.Io_formats.sequence in
                let id = Value.VString r.Io_formats.id in
                if arity = 2 then [ id; seq ]
                else
                  [ id; Value.VString r.Io_formats.description ]
                  @ List.init (arity - 3) (fun _ -> Value.VNull)
                  @ [ seq ])
              records)
  in
  let rows = do_insert ctx ~user ~table:table_name values in
  List.length rows

let do_copy_to ctx ~table:table_name ~path ~format =
  let table = find_table ctx table_name in
  let schema = Table.schema table in
  let contents =
    match format with
    | Ast.Csv ->
        let render v = if Value.is_null v then "" else Value.to_display v in
        Io_formats.to_csv
          (List.map
             (fun (_, tuple) -> Array.to_list (Array.map render tuple))
             (Table.to_list table))
    | Ast.Fasta ->
        let arity = Schema.arity schema in
        if arity < 2 then fail "FASTA export needs at least (id, sequence) columns";
        Io_formats.to_fasta
          (List.map
             (fun (_, tuple) ->
               {
                 Io_formats.id = Value.to_display (Tuple.get tuple 0);
                 description =
                   (if arity >= 3 && not (Value.is_null (Tuple.get tuple 1)) then
                      Value.to_display (Tuple.get tuple 1)
                    else "");
                 sequence = Value.to_display (Tuple.get tuple (arity - 1));
               })
             (Table.to_list table))
  in
  write_file path contents;
  Table.live_count table

(* ------------------------------------------------------------ dependency *)

let do_create_dependency (ctx : Context.t) id sources target procedure =
  let proc =
    match Procedure.Registry.find (Tracker.registry ctx.tracker) procedure with
    | Some p -> p
    | None ->
        fail "unknown procedure %s (register it through the API first)" procedure
  in
  let rule =
    Rule.make ~id
      ~sources:(List.map (fun (t, c) -> Rule.attr t c) sources)
      ~target:(Rule.attr (fst target) (snd target))
      proc
  in
  ok_or_fail (Tracker.add_rule ctx.tracker rule);
  Message (Printf.sprintf "dependency %s created: %s" id (Rule.describe rule))

let show_outdated (ctx : Context.t) table_name =
  let table = find_table ctx table_name in
  let schema = Table.schema table in
  let cells = Tracker.outdated_cells ctx.tracker ~table:table_name in
  let out_schema =
    Schema.make
      [
        { Schema.name = "row"; ty = Value.TInt };
        { Schema.name = "column"; ty = Value.TString };
      ]
  in
  let rows =
    List.map
      (fun (row, col) ->
        let cname =
          if col < Schema.arity schema then (Schema.column_at schema col).Schema.name
          else string_of_int col
        in
        {
          Propagate.tuple = [| Value.VInt row; Value.VString cname |];
          anns = [| []; [] |];
        })
      cells
  in
  Rows { Propagate.schema = out_schema; rows }

(* ---------------------------------------------------- ANALYZE statistics *)

(* (Re)compute one table's statistics from a full scan of its live rows,
   register them, and bump the counters.  Returns the row count. *)
let analyze_table (ctx : Context.t) name =
  let table = find_table ctx name in
  let rows =
    List.rev (Table.fold table ~init:[] ~f:(fun acc _row tuple -> tuple :: acc))
  in
  let ts =
    Tstats.analyze ~table:(Table.name table) ~schema:(Table.schema table) ~rows
  in
  Stats_reg.set ctx.Context.tstats ts;
  Stats.record_stats_analyzed (Disk.stats ctx.Context.disk);
  Metrics.inc ctx.Context.obs.Obs.stats_analyzed_c;
  List.length rows

(* Adaptive feedback, second half: tables whose statistics drifted get
   re-analyzed at the next statement boundary ([Db.exec] calls this after
   each successful statement).  Dropped tables just lose their entry. *)
let reanalyze_stale (ctx : Context.t) =
  List.iter
    (fun (ts : Tstats.t) ->
      if Catalog.exists ctx.Context.catalog ts.Tstats.table then
        ignore (analyze_table ctx ts.Tstats.table)
      else Stats_reg.remove ctx.Context.tstats ts.Tstats.table)
    (Stats_reg.stale ctx.Context.tstats)

(* -------------------------------------------------------- explain analyze *)

(* Run a query with the EXPLAIN ANALYZE recorder installed, returning the
   recorded operator tree alongside the result and total wall time.
   Exposed for the differential tests, which check per-node actual row
   counts against the naive oracle. *)
let analyze_query (ctx : Context.t) ~user (q : Ast.query) =
  let an = Analyze.create (Disk.stats ctx.Context.disk) in
  ctx.Context.analyze <- Some an;
  Fun.protect
    ~finally:(fun () -> ctx.Context.analyze <- None)
    (fun () ->
      let result, elapsed =
        Timer.timed (fun () ->
            Obs.span ctx.Context.obs "explain_analyze" (fun () ->
                exec_query ctx ~user q))
      in
      (Analyze.root an, result, elapsed))

(* Adaptive feedback, first half: walk the recorded tree and compare each
   table-attributed node's estimate with what actually came out of it.  A
   drift beyond [drift_ratio] in either direction means the statistics no
   longer describe the data; mark them stale so the next statement
   boundary re-analyzes. *)
let drift_ratio = 4.0

let note_estimate_drift (ctx : Context.t) root =
  let rec walk (n : Analyze.node) =
    (match n.Analyze.table with
    | Some table
      when (not (Float.is_nan n.Analyze.est_rows)) && n.Analyze.loops > 0 ->
        let est = Float.max 1.0 n.Analyze.est_rows in
        let actual = Float.max 1.0 (float_of_int n.Analyze.actual_rows) in
        let ratio = Float.max (est /. actual) (actual /. est) in
        if ratio > drift_ratio && Stats_reg.mark_stale ctx.Context.tstats table
        then begin
          Stats.record_stats_stale (Disk.stats ctx.Context.disk);
          Metrics.inc ctx.Context.obs.Obs.stats_stale_c
        end
    | _ -> ());
    List.iter walk n.Analyze.children
  in
  walk root

let explain_analyze ctx ~user q =
  match analyze_query ctx ~user q with
  | Some root, result, elapsed ->
      note_estimate_drift ctx root;
      Analyze.render ~total_ns:elapsed
        ~returned:(Propagate.row_count result)
        root
  | None, _, _ -> "EXPLAIN ANALYZE: no operators recorded"

(* --------------------------------------------------------------- execute *)

let execute_exn (ctx : Context.t) ~user (stmt : Ast.statement) : outcome =
  Cancel.check ctx.Context.cancel;
  (match ctx.Context.read_only with
  | Some reason when is_write_stmt stmt -> raise (Read_only reason)
  | _ -> ());
  (match sys_write_target stmt with
  | Some view -> raise (View_read_only view)
  | None -> ());
  match stmt with
  | Ast.Query q -> Rows (exec_query ctx ~user q)
  | Ast.Explain q -> Message (Cost.explain ctx q)
  | Ast.Explain_analyze q -> Message (explain_analyze ctx ~user q)
  | Ast.Create_table { name; columns } ->
      ddl_hit ctx;
      let schema =
        Schema.make (List.map (fun (n, ty) -> { Schema.name = n; ty }) columns)
      in
      ignore (ok_or_fail (Catalog.create_table ctx.catalog ~name schema));
      Message (Printf.sprintf "table %s created" name)
  | Ast.Drop_table name ->
      ddl_hit ctx;
      if Catalog.drop_table ctx.catalog name then begin
        Stats_reg.remove ctx.Context.tstats name;
        Message (Printf.sprintf "table %s dropped" name)
      end
      else fail "unknown table %s" name
  | Ast.Analyze_stats target ->
      let tables =
        match target with
        | Some name -> [ Table.name (find_table ctx name) ]
        | None -> Catalog.table_names ctx.catalog
      in
      List.iter (fun t -> check_acl ctx ~user Acl.Select ~table:t ()) tables;
      let total =
        List.fold_left (fun acc name -> acc + analyze_table ctx name) 0 tables
      in
      Message
        (Printf.sprintf "analyzed %d table%s (%d rows)" (List.length tables)
           (if List.length tables = 1 then "" else "s")
           total)
  | Ast.Insert { table; values } ->
      let rows = do_insert ctx ~user ~table values in
      Count { affected = List.length rows; verb = "inserted" }
  | Ast.Update { table; sets; where } ->
      let cells = do_update ctx ~user ~table sets where in
      Count { affected = List.length cells; verb = "updated (cells)" }
  | Ast.Delete { table; where } ->
      let rows = do_delete ctx ~user ~table where in
      Count { affected = List.length rows; verb = "deleted" }
  | Ast.Create_ann_table { table; name; scheme; category; indexed } ->
      let tbl = find_table ctx table in
      let category = Option.map Ann.category_of_name category in
      ddl_hit ctx;
      ok_or_fail
        (Manager.create_annotation_table ctx.ann ~table:tbl ~name ?scheme ?category
           ~indexed ());
      Message (Printf.sprintf "annotation table %s created on %s" name table)
  | Ast.Drop_ann_table { table; name } ->
      if Manager.drop_annotation_table ctx.ann ~table_name:table ~name then
        Message (Printf.sprintf "annotation table %s dropped from %s" name table)
      else fail "no annotation table %s on %s" name table
  | Ast.Add_annotation { targets; value; on } -> do_add_annotation ctx ~user targets value on
  | Ast.Archive_annotation { targets; between; on } ->
      do_archive_restore ctx ~restore:false targets between on
  | Ast.Restore_annotation { targets; between; on } ->
      do_archive_restore ctx ~restore:true targets between on
  | Ast.Start_approval { table; columns; approver } ->
      ok_or_fail (Approval.start ctx.approval ~table ?columns ~approved_by:approver ());
      Message (Printf.sprintf "content approval started on %s" table)
  | Ast.Stop_approval { table; columns } ->
      if Approval.stop ctx.approval ~table ?columns () then
        Message (Printf.sprintf "content approval stopped on %s" table)
      else fail "content approval was not on for %s" table
  | Ast.Approve id ->
      ok_or_fail (Approval.approve ctx.approval id ~by:user);
      Message (Printf.sprintf "entry %d approved" id)
  | Ast.Disapprove id ->
      ok_or_fail (Approval.disapprove ctx.approval id ~by:user);
      Message (Printf.sprintf "entry %d disapproved; inverse statement executed" id)
  | Ast.Show_pending table -> Entries (Approval.pending ctx.approval ?table ())
  | Ast.Grant { privilege; table; columns; grantee } ->
      ddl_hit ctx;
      ok_or_fail (Acl.grant ctx.acl privilege ~table ?columns:columns grantee);
      Message "granted"
  | Ast.Revoke { privilege; table; grantee } ->
      if Acl.revoke ctx.acl privilege ~table grantee then Message "revoked"
      else fail "no matching grant"
  | Ast.Create_user name ->
      ok_or_fail (Principal.add_user ctx.principals name);
      Message (Printf.sprintf "user %s created" name)
  | Ast.Create_group name ->
      ok_or_fail (Principal.add_group ctx.principals name);
      Message (Printf.sprintf "group %s created" name)
  | Ast.Add_user_to_group { user = u; group } ->
      ok_or_fail (Principal.add_to_group ctx.principals ~user:u ~group);
      Message (Printf.sprintf "%s added to %s" u group)
  | Ast.Create_dependency { id; sources; target; procedure } ->
      ddl_hit ctx;
      do_create_dependency ctx id sources target procedure
  | Ast.Link_dependency { id; source_rows; target_row } ->
      ok_or_fail (Tracker.link_rows ctx.tracker ~rule_id:id ~source_rows ~target_row);
      Message (Printf.sprintf "dependency %s linked" id)
  | Ast.Validate_cell { table; row; column } ->
      let tbl = find_table ctx table in
      let col = Schema.index_of_exn (Table.schema tbl) column in
      Tracker.revalidate ctx.tracker ~table ~row ~col;
      Message (Printf.sprintf "%s[%d].%s validated" table row column)
  | Ast.Create_index { name; table; column } ->
      let tbl = find_table ctx table in
      if not (Schema.mem (Table.schema tbl) column) then
        fail "no column %s on %s" column table;
      let key = String.lowercase_ascii name in
      if Hashtbl.mem ctx.indexes key then fail "index %s already exists" name;
      ddl_hit ctx;
      let idx =
        {
          Context.idx_name = name;
          idx_table = table;
          idx_column = column;
          tree = Bdbms_index.Btree.create ctx.bp;
          built = false;
          dirty = false;
        }
      in
      build_index ctx idx;
      Hashtbl.replace ctx.indexes key idx;
      Message (Printf.sprintf "index %s created on %s(%s)" name table column)
  | Ast.Drop_index name ->
      let key = String.lowercase_ascii name in
      if Hashtbl.mem ctx.indexes key then begin
        Hashtbl.remove ctx.indexes key;
        Message (Printf.sprintf "index %s dropped" name)
      end
      else fail "no index %s" name
  | Ast.Show_outdated table -> show_outdated ctx table
  | Ast.Copy_from { table; path; format } ->
      check_acl ctx ~user Acl.Insert ~table ();
      let n = do_copy_from ctx ~user ~table ~path ~format in
      Count { affected = n; verb = "imported" }
  | Ast.Copy_to { table; path; format } ->
      check_acl ctx ~user Acl.Select ~table ();
      let n = do_copy_to ctx ~table ~path ~format in
      Count { affected = n; verb = "exported" }
  | Ast.Show_provenance { table; row; column; at } ->
      let tbl = find_table ctx table in
      let col = Schema.index_of_exn (Table.schema tbl) column in
      let records =
        match at with
        | Some t -> (
            (* Figure 8: the record governing the value at time t *)
            match Prov_store.source_at ctx.prov ~table_name:table ~row ~col ~at:t with
            | Some r -> [ r ]
            | None -> [])
        | None -> Prov_store.records_for_cell ctx.prov ~table_name:table ~row ~col
      in
      let out_schema =
        Schema.make
          [
            { Schema.name = "at"; ty = Value.TInt };
            { Schema.name = "operation"; ty = Value.TString };
            { Schema.name = "actor"; ty = Value.TString };
          ]
      in
      let rows =
        List.map
          (fun (r : Prov_record.t) ->
            {
              Propagate.tuple =
                [|
                  Value.VInt r.Prov_record.at;
                  Value.VString (Prov_record.describe r);
                  Value.VString r.Prov_record.actor;
                |];
              anns = [| []; []; [] |];
            })
          records
      in
      Rows { Propagate.schema = out_schema; rows }
  | Ast.Show_tables ->
      let out_schema =
        Schema.make
          [
            { Schema.name = "table_name"; ty = Value.TString };
            { Schema.name = "rows"; ty = Value.TInt };
            { Schema.name = "annotation_tables"; ty = Value.TString };
          ]
      in
      let rows =
        List.map
          (fun name ->
            let table = Catalog.find_exn ctx.catalog name in
            {
              Propagate.tuple =
                [|
                  Value.VString name;
                  Value.VInt (Table.live_count table);
                  Value.VString
                    (String.concat ","
                       (Manager.annotation_table_names ctx.ann ~table_name:name));
                |];
              anns = [| []; []; [] |];
            })
          (Catalog.table_names ctx.catalog)
      in
      Rows { Propagate.schema = out_schema; rows }
  | Ast.Describe name ->
      let schema, indexed_cols =
        if Sysview.is_sys name then
          match Sysview.schema_of name with
          | Some s -> (s, [])
          | None -> fail "unknown system view %s" name
        else
          ( Table.schema (find_table ctx name),
            Context.indexes_on ctx ~table:name
            |> List.map (fun (i : Context.index_def) ->
                   String.lowercase_ascii i.Context.idx_column) )
      in
      let out_schema =
        Schema.make
          [
            { Schema.name = "column"; ty = Value.TString };
            { Schema.name = "type"; ty = Value.TString };
            { Schema.name = "indexed"; ty = Value.TBool };
          ]
      in
      let rows =
        List.map
          (fun (c : Schema.column) ->
            {
              Propagate.tuple =
                [|
                  Value.VString c.Schema.name;
                  Value.VString (Value.type_name c.Schema.ty);
                  Value.VBool (List.mem (String.lowercase_ascii c.Schema.name) indexed_cols);
                |];
              anns = [| []; []; [] |];
            })
          (Schema.columns schema)
      in
      Rows { Propagate.schema = out_schema; rows }
  | Ast.Show_dependencies ->
      let rules = Rule_set.rules (Tracker.rule_set ctx.tracker) in
      let derived = Rule_set.derived_rules (Tracker.rule_set ctx.tracker) in
      Message
        (String.concat "\n" (List.map Rule.describe rules @ List.map Rule.describe derived))

let execute ctx ~user stmt =
  match execute_exn ctx ~user stmt with
  | outcome -> Ok outcome
  | exception Exec_error msg -> Error msg
  | exception View_read_only view ->
      Error (Printf.sprintf "%s is a read-only system view" view)
  | exception Expr.Eval_error msg -> Error msg
  | exception Not_found -> Error "name not found"
  | exception Invalid_argument msg -> Error msg

let run ctx ~user src =
  match Obs.span ctx.Context.obs "parse" (fun () -> Parser.parse src) with
  | Error e -> Error e
  | Ok stmt ->
      Obs.span ctx.Context.obs "execute" (fun () -> execute ctx ~user stmt)

let run_script ctx ~user src =
  match
    Obs.span ctx.Context.obs "parse" (fun () -> Parser.parse_multi src)
  with
  | Error e -> Error e
  | Ok stmts ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | stmt :: rest -> (
            match
              Obs.span ctx.Context.obs "execute" (fun () ->
                  execute ctx ~user stmt)
            with
            | Ok outcome -> go (outcome :: acc) rest
            | Error _ as e -> e)
      in
      go [] stmts

(* ---------------------------------------------------------------- render *)

let render outcome =
  match outcome with
  | Message m -> m
  | Count { affected; verb } -> Printf.sprintf "%d %s" affected verb
  | Entries entries ->
      if entries = [] then "no pending operations"
      else
        String.concat "\n"
          (List.map
             (fun (e : Approval.entry) ->
               Printf.sprintf "#%d %s by %s at t%d [%s] inverse: %s" e.Approval.id
                 (match e.Approval.operation with
                 | Approval.Op_insert { table; row } ->
                     Printf.sprintf "INSERT %s row %d" table row
                 | Approval.Op_update { table; row; col; _ } ->
                     Printf.sprintf "UPDATE %s row %d col %d" table row col
                 | Approval.Op_delete { table; row; _ } ->
                     Printf.sprintf "DELETE %s row %d" table row)
                 e.Approval.user e.Approval.at
                 (match e.Approval.status with
                 | Approval.Pending -> "pending"
                 | Approval.Approved -> "approved"
                 | Approval.Disapproved -> "disapproved")
                 (Approval.inverse_description e.Approval.operation))
             entries)
  | Rows rs ->
      let buf = Buffer.create 256 in
      let cols = Schema.columns rs.Propagate.schema in
      Buffer.add_string buf
        (String.concat " | " (List.map (fun c -> c.Schema.name) cols));
      Buffer.add_char buf '\n';
      List.iter
        (fun at ->
          Buffer.add_string buf (Tuple.to_display at.Propagate.tuple);
          (* annotations as footnotes per column *)
          Array.iteri
            (fun i anns ->
              List.iter
                (fun ann ->
                  Buffer.add_string buf
                    (Printf.sprintf "\n    @%s %s"
                       (List.nth cols i).Schema.name
                       (Format.asprintf "%a" Ann.pp ann)))
                anns)
            at.Propagate.anns;
          Buffer.add_char buf '\n')
        rs.Propagate.rows;
      Buffer.add_string buf (Printf.sprintf "(%d rows)" (List.length rs.Propagate.rows));
      Buffer.contents buf

(** Batched (vectorized) operators for the plain query path.

    Each operator is the batch-at-a-time counterpart of a
    {!Bdbms_relation.Cursor} operator and is observationally identical
    to it — same rows, same order, same three-valued predicate
    semantics, same error messages — so the executor can run the same
    {!Plan} through either pipeline and the differential suite can
    assert the outputs match.  The speed comes from page-at-a-time
    decoding into column vectors, predicates compiled to per-column
    loops over a selection vector, and aggregates running typed tight
    loops that box only at finalization. *)

type src = {
  schema : Bdbms_relation.Schema.t;
  next : unit -> Bdbms_relation.Batch.t option;
}
(** A pull-based stream of column batches.  Like cursors, sources are
    single-use; [next] keeps returning [None] once exhausted. *)

val scan : ?batch_rows:int -> ?need:bool array -> Bdbms_relation.Table.t -> src
(** Batch scan of a table's live rows in row order
    ({!Bdbms_relation.Table.batches}); [need] prunes decode to the marked
    columns — the caller must prove nothing reads the others. *)

val of_rows : ?batch_rows:int -> Bdbms_relation.Table.t -> int list -> src
(** Re-batch point-fetched rows (index-probe candidates); dead rows are
    skipped. *)

val with_schema : src -> Bdbms_relation.Schema.t -> src
(** Reinterpret under a different schema of the same arity (alias
    qualification).  @raise Invalid_argument on arity mismatch. *)

val compile_pred :
  Bdbms_relation.Schema.t ->
  Bdbms_relation.Expr.t ->
  Bdbms_relation.Batch.t ->
  int ->
  bool
(** Compile a predicate to a per-batch row test with
    {!Bdbms_relation.Expr.eval_pred} semantics (NULL collapses to
    false).  Column/literal and column/column comparisons specialize to
    typed loops per vector kind; everything else evaluates boxed with
    column indices pre-resolved.  Exposed for the property tests. *)

val filter : ?on_drop:(int -> unit) -> src -> Bdbms_relation.Expr.t -> src
(** Compact each batch's selection vector to the rows satisfying the
    predicate.  [on_drop] receives the per-batch count of rows dropped.
    Fully-filtered batches flow through empty rather than being
    skipped. *)

val hash_join :
  ?stats:Bdbms_storage.Stats.t ->
  ?batch_rows:int ->
  build_left:bool ->
  left_keys:int list ->
  right_keys:int list ->
  src ->
  src ->
  src
(** Equi-join on positional key lists, batch counterpart of
    {!Bdbms_relation.Cursor.hash_join}: the build side drains into a
    hash table of boxed tuples on first pull, the probe side streams
    through batch-by-batch.  NULL keys never match; candidates re-check
    {!Bdbms_relation.Value.equal}; output order and the [left ++ right]
    column layout match the tuple path exactly. *)

val aggregate :
  src -> (Bdbms_relation.Ops.aggregate * string) list -> Bdbms_relation.Ops.rowset
(** Streaming ungrouped aggregation over batches — the single row
    {!Bdbms_relation.Cursor.aggregate} would produce, computed with
    typed per-column loops.  @raise Bdbms_relation.Expr.Eval_error on an
    unknown aggregate column. *)

val top_k :
  src ->
  cmp:(Bdbms_relation.Tuple.t -> Bdbms_relation.Tuple.t -> int) ->
  k:int ->
  Bdbms_relation.Tuple.t list
(** Bounded-heap ORDER BY ... LIMIT over batches; ties preserve input
    order, matching {!Bdbms_relation.Cursor.top_k}. *)

val to_cursor : src -> Bdbms_relation.Cursor.t
(** Lazy tuple view: boxes only selected rows and pulls batches on
    demand, so a downstream LIMIT stops decoding early. *)

val to_rowset : src -> Bdbms_relation.Ops.rowset

val meter : Analyze.t -> Analyze.node -> src -> src
(** Wrap [next] with {!Analyze.meter_batch_pull}: each produced batch
    adds its selected-row count to the node's actual rows and one to its
    batch count. *)

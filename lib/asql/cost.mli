(** Cost estimation for A-SQL plans.

    Section 3.4 leaves "for each A-SQL operator its algebraic definition,
    cost estimate function, and algebraic properties" as an open issue;
    this module supplies the cost-estimate part: per-operator cardinality
    and page-access estimates from catalog statistics, rendered as an
    EXPLAIN tree.  Estimates use per-table ANALYZE statistics
    when available and fall back to textbook selectivity heuristics
    (equality 10%, range 30%, LIKE 25%, AWHERE 50%). *)

type estimate = {
  rows : float;     (** estimated output cardinality *)
  pages : float;    (** estimated page accesses *)
}

type warning = Unknown_table of string
    (** The cost model had to fabricate a 0-row leaf because the table
        does not exist — the estimate tree is built on sand. *)

val warning_text : warning -> string
(** Human-readable one-liner, as appended to EXPLAIN output. *)

val estimate_query : Context.t -> Ast.query -> estimate
(** Root estimate (errors on unknown tables are folded into 0-cost
    leaves so EXPLAIN never fails on a typo — the tree shows the
    problem). *)

val warnings : Context.t -> Ast.query -> warning list
(** The typed warnings EXPLAIN would print for this query. *)

val explain : Context.t -> Ast.query -> string
(** The full plan tree with per-operator estimates, each node tagged
    with its estimate source ([est src=stats] when every input to the
    node carried ANALYZE statistics, [heuristic] otherwise), followed
    by any {!warning} lines. *)

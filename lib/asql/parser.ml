module Expr = Bdbms_relation.Expr
module Value = Bdbms_relation.Value
module Ops = Bdbms_relation.Ops
module Ann_pred = Bdbms_annotation.Ann_pred
module Ann = Bdbms_annotation.Ann
module Ann_store = Bdbms_annotation.Ann_store
module Acl = Bdbms_auth.Acl

exception Parse_failure of string

type state = { tokens : Lexer.token array; mutable pos : int }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_failure s)) fmt

let peek st = st.tokens.(st.pos)

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

(* case-insensitive keyword check without consuming *)
let at_kw st kw =
  match peek st with
  | Lexer.Ident s -> String.uppercase_ascii s = kw
  | _ -> false

let eat_kw st kw =
  if at_kw st kw then advance st
  else fail "expected %s, found %s" kw (Lexer.token_text (peek st))

let try_kw st kw =
  if at_kw st kw then begin
    advance st;
    true
  end
  else false

let at_symbol st s = match peek st with Lexer.Symbol s' -> s = s' | _ -> false

let eat_symbol st s =
  if at_symbol st s then advance st
  else fail "expected %s, found %s" s (Lexer.token_text (peek st))

let try_symbol st s =
  if at_symbol st s then begin
    advance st;
    true
  end
  else false

let reserved =
  [
    "SELECT"; "FROM"; "WHERE"; "AWHERE"; "GROUP"; "HAVING"; "AHAVING"; "FILTER";
    "ORDER"; "LIMIT"; "UNION"; "INTERSECT"; "EXCEPT"; "AND"; "OR"; "NOT"; "BY";
    "AS"; "ON"; "TO"; "ANNOTATION"; "PROMOTE"; "DISTINCT"; "LIKE"; "IS"; "NULL";
    "IN"; "ASC"; "DESC"; "VALUES"; "SET"; "BETWEEN"; "ANN";
  ]

let ident st =
  match next st with
  | Lexer.Ident s ->
      if List.mem (String.uppercase_ascii s) reserved then
        fail "unexpected keyword %s" s
      else s
  | t -> fail "expected an identifier, found %s" (Lexer.token_text t)

(* an identifier where keywords are acceptable (e.g. category names) *)
let any_ident st =
  match next st with
  | Lexer.Ident s -> s
  | t -> fail "expected an identifier, found %s" (Lexer.token_text t)

(* A table name, optionally one-level qualified — [sys.metrics].  The
   dot is consumed only when an identifier follows immediately, so the
   annotation-target syntax (t.anntable), which parses its own dot,
   is unaffected. *)
let table_ident st =
  let first = ident st in
  if
    at_symbol st "."
    &&
    match st.tokens.(st.pos + 1) with
    | Lexer.Ident s -> not (List.mem (String.uppercase_ascii s) reserved)
    | _ -> false
  then begin
    advance st;
    (* the dot *)
    let second = any_ident st in
    first ^ "." ^ second
  end
  else first

let int_lit st =
  match next st with
  | Lexer.Int_lit n -> n
  | t -> fail "expected an integer, found %s" (Lexer.token_text t)

let string_lit st =
  match next st with
  | Lexer.String_lit s -> s
  | t -> fail "expected a string literal, found %s" (Lexer.token_text t)

(* ----------------------------------------------------------- expressions *)

let parse_literal st =
  match peek st with
  | Lexer.Int_lit n ->
      advance st;
      Value.VInt n
  | Lexer.Float_lit f ->
      advance st;
      Value.VFloat f
  | Lexer.String_lit s ->
      advance st;
      Value.VString s
  | Lexer.Ident s when String.uppercase_ascii s = "TRUE" ->
      advance st;
      Value.VBool true
  | Lexer.Ident s when String.uppercase_ascii s = "FALSE" ->
      advance st;
      Value.VBool false
  | Lexer.Ident s when String.uppercase_ascii s = "NULL" ->
      advance st;
      Value.VNull
  | Lexer.Symbol "-" -> (
      advance st;
      match next st with
      | Lexer.Int_lit n -> Value.VInt (-n)
      | Lexer.Float_lit f -> Value.VFloat (-.f)
      | t -> fail "expected a number after -, found %s" (Lexer.token_text t))
  | t -> fail "expected a literal, found %s" (Lexer.token_text t)

(* column reference, possibly qualified: a.b becomes "a_b" (multi-table
   scans prefix columns by their table alias) *)
let parse_col_ref st =
  let first = ident st in
  if try_symbol st "." then
    let second = any_ident st in
    first ^ "_" ^ second
  else first

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if try_kw st "OR" then Expr.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if try_kw st "AND" then Expr.And (left, parse_and st) else left

and parse_not st =
  if try_kw st "NOT" then Expr.Not (parse_not st) else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  if try_symbol st "=" then Expr.Cmp (Expr.Eq, left, parse_additive st)
  else if try_symbol st "<>" then Expr.Cmp (Expr.Neq, left, parse_additive st)
  else if try_symbol st "<=" then Expr.Cmp (Expr.Leq, left, parse_additive st)
  else if try_symbol st ">=" then Expr.Cmp (Expr.Geq, left, parse_additive st)
  else if try_symbol st "<" then Expr.Cmp (Expr.Lt, left, parse_additive st)
  else if try_symbol st ">" then Expr.Cmp (Expr.Gt, left, parse_additive st)
  else if try_kw st "LIKE" then Expr.Like (left, string_lit st)
  else if try_kw st "IS" then begin
    let negated = try_kw st "NOT" in
    eat_kw st "NULL";
    if negated then Expr.Not (Expr.Is_null left) else Expr.Is_null left
  end
  else if try_kw st "IN" then begin
    eat_symbol st "(";
    let rec go acc =
      let v = parse_literal st in
      if try_symbol st "," then go (v :: acc) else List.rev (v :: acc)
    in
    let values = go [] in
    eat_symbol st ")";
    Expr.In_list (left, values)
  end
  else left

and parse_additive st =
  let left = parse_term st in
  let rec go acc =
    if try_symbol st "+" then go (Expr.Arith (Expr.Add, acc, parse_term st))
    else if try_symbol st "-" then go (Expr.Arith (Expr.Sub, acc, parse_term st))
    else if try_symbol st "||" then go (Expr.Concat (acc, parse_term st))
    else acc
  in
  go left

and parse_term st =
  let left = parse_factor st in
  let rec go acc =
    if try_symbol st "*" then go (Expr.Arith (Expr.Mul, acc, parse_factor st))
    else if try_symbol st "/" then go (Expr.Arith (Expr.Div, acc, parse_factor st))
    else if try_symbol st "%" then go (Expr.Arith (Expr.Mod, acc, parse_factor st))
    else acc
  in
  go left

and parse_factor st =
  match peek st with
  | Lexer.Symbol "(" ->
      advance st;
      let e = parse_expr st in
      eat_symbol st ")";
      e
  | Lexer.Ident s
    when not (List.mem (String.uppercase_ascii s) reserved) ->
      Expr.Col (parse_col_ref st)
  | _ -> Expr.Lit (parse_literal st)

(* ---------------------------------------------------- annotation preds *)

let rec parse_apred st = parse_aor st

and parse_aor st =
  let left = parse_aand st in
  if try_kw st "OR" then Ann_pred.Or (left, parse_aor st) else left

and parse_aand st =
  let left = parse_aatom st in
  if try_kw st "AND" then Ann_pred.And (left, parse_aand st) else left

and parse_aatom st =
  if try_kw st "NOT" then Ann_pred.Not (parse_aatom st)
  else if try_symbol st "(" then begin
    let p = parse_apred st in
    eat_symbol st ")";
    p
  end
  else if try_kw st "ANY" then Ann_pred.Any
  else begin
    eat_kw st "ANN";
    if try_kw st "CONTAINS" then Ann_pred.Contains (string_lit st)
    else if try_kw st "AUTHOR" then begin
      eat_symbol st "=";
      Ann_pred.Author_is (string_lit st)
    end
    else if try_kw st "CATEGORY" then begin
      eat_symbol st "=";
      Ann_pred.Category_is (Ann.category_of_name (string_lit st))
    end
    else if try_kw st "ADDED" then begin
      if try_kw st "BEFORE" then Ann_pred.Added_before (int_lit st)
      else begin
        eat_kw st "AFTER";
        Ann_pred.Added_after (int_lit st)
      end
    end
    else if try_kw st "PATH" then begin
      let path = String.split_on_char '/' (string_lit st) in
      eat_symbol st "=";
      Ann_pred.Xml_path_is (path, string_lit st)
    end
    else fail "expected CONTAINS/AUTHOR/CATEGORY/ADDED/PATH after ANN"
  end

(* ----------------------------------------------------------------- select *)

let aggregate_of_name name col =
  match String.uppercase_ascii name with
  | "COUNT" -> Some (match col with None -> Ops.Count_star | Some c -> Ops.Count c)
  | "SUM" -> ( match col with Some c -> Some (Ops.Sum c) | None -> None)
  | "AVG" -> ( match col with Some c -> Some (Ops.Avg c) | None -> None)
  | "MIN" -> ( match col with Some c -> Some (Ops.Min c) | None -> None)
  | "MAX" -> ( match col with Some c -> Some (Ops.Max c) | None -> None)
  | _ -> None

let is_aggregate_name name =
  List.mem (String.uppercase_ascii name) [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]

let parse_name_list st =
  eat_symbol st "(";
  let rec go acc =
    let c = parse_col_ref st in
    if try_symbol st "," then go (c :: acc) else List.rev (c :: acc)
  in
  let names = go [] in
  eat_symbol st ")";
  names

let parse_select_item st =
  if try_symbol st "*" then Ast.Star
  else begin
    let expr =
      match peek st with
      | Lexer.Ident name when is_aggregate_name name -> (
          (* lookahead for '(' *)
          let save = st.pos in
          advance st;
          if try_symbol st "(" then begin
            let agg =
              if try_symbol st "*" then (
                eat_symbol st ")";
                Ops.Count_star)
              else begin
                let col = parse_col_ref st in
                eat_symbol st ")";
                match aggregate_of_name name (Some col) with
                | Some a -> a
                | None -> fail "bad aggregate %s" name
              end
            in
            Ast.Aggregate agg
          end
          else begin
            st.pos <- save;
            let e = parse_expr st in
            match e with Expr.Col c -> Ast.Col_ref c | e -> Ast.Scalar e
          end)
      | _ -> (
          let e = parse_expr st in
          match e with Expr.Col c -> Ast.Col_ref c | e -> Ast.Scalar e)
    in
    let promote =
      if at_kw st "PROMOTE" then begin
        advance st;
        parse_name_list st
      end
      else []
    in
    let alias =
      if try_kw st "AS" then Some (ident st)
      else None
    in
    Ast.Item { expr; alias; promote }
  end

let parse_from_item st =
  let table = table_ident st in
  let table_alias =
    match peek st with
    | Lexer.Ident s
      when (not (List.mem (String.uppercase_ascii s) reserved))
           && String.uppercase_ascii s <> "ANNOTATION" ->
        advance st;
        Some s
    | _ -> None
  in
  let ann_tables =
    if try_kw st "ANNOTATION" then begin
      eat_symbol st "(";
      let names =
        if try_symbol st "*" then [ "*" ]
        else begin
          let rec go acc =
            let n = any_ident st in
            if try_symbol st "," then go (n :: acc) else List.rev (n :: acc)
          in
          go []
        end
      in
      eat_symbol st ")";
      Some names
    end
    else None
  in
  { Ast.table; table_alias; ann_tables }

let rec parse_select st =
  eat_kw st "SELECT";
  let distinct = try_kw st "DISTINCT" in
  let rec items acc =
    let item = parse_select_item st in
    if try_symbol st "," then items (item :: acc) else List.rev (item :: acc)
  in
  let items = items [] in
  eat_kw st "FROM";
  let rec froms acc =
    let f = parse_from_item st in
    if try_symbol st "," then froms (f :: acc) else List.rev (f :: acc)
  in
  let from = froms [] in
  let where = if try_kw st "WHERE" then Some (parse_expr st) else None in
  let awhere = if try_kw st "AWHERE" then Some (parse_apred st) else None in
  let group_by, having, ahaving =
    if try_kw st "GROUP" then begin
      eat_kw st "BY";
      let rec cols acc =
        let c = parse_col_ref st in
        if try_symbol st "," then cols (c :: acc) else List.rev (c :: acc)
      in
      let keys = cols [] in
      let having = if try_kw st "HAVING" then Some (parse_expr st) else None in
      let ahaving = if try_kw st "AHAVING" then Some (parse_apred st) else None in
      (keys, having, ahaving)
    end
    else ([], None, None)
  in
  let filter = if try_kw st "FILTER" then Some (parse_apred st) else None in
  let order_by =
    if try_kw st "ORDER" then begin
      eat_kw st "BY";
      let rec specs acc =
        let c = parse_col_ref st in
        let dir =
          if try_kw st "DESC" then `Desc
          else begin
            ignore (try_kw st "ASC");
            `Asc
          end
        in
        if try_symbol st "," then specs ((c, dir) :: acc) else List.rev ((c, dir) :: acc)
      in
      specs []
    end
    else []
  in
  let limit = if try_kw st "LIMIT" then Some (int_lit st) else None in
  let offset = if try_kw st "OFFSET" then Some (int_lit st) else None in
  {
    Ast.distinct;
    items;
    from;
    where;
    awhere;
    group_by;
    having;
    ahaving;
    filter;
    order_by;
    limit;
    offset;
  }

and parse_query st =
  let left = Ast.Select (parse_select st) in
  let rec go acc =
    if try_kw st "UNION" then go (Ast.Union (acc, Ast.Select (parse_select st)))
    else if try_kw st "INTERSECT" then go (Ast.Intersect (acc, Ast.Select (parse_select st)))
    else if try_kw st "EXCEPT" then go (Ast.Except (acc, Ast.Select (parse_select st)))
    else acc
  in
  go left

(* ------------------------------------------------------------------- DML *)

let parse_values_row st =
  eat_symbol st "(";
  let rec go acc =
    let v = parse_literal st in
    if try_symbol st "," then go (v :: acc) else List.rev (v :: acc)
  in
  let row = go [] in
  eat_symbol st ")";
  row

let parse_insert st =
  eat_kw st "INTO";
  let table = table_ident st in
  eat_kw st "VALUES";
  let rec rows acc =
    let row = parse_values_row st in
    if try_symbol st "," then rows (row :: acc) else List.rev (row :: acc)
  in
  Ast.Insert { table; values = rows [] }

let parse_update_body st =
  let table = table_ident st in
  eat_kw st "SET";
  let rec sets acc =
    let col = parse_col_ref st in
    eat_symbol st "=";
    let e = parse_expr st in
    if try_symbol st "," then sets ((col, e) :: acc) else List.rev ((col, e) :: acc)
  in
  let sets = sets [] in
  let where = if try_kw st "WHERE" then Some (parse_expr st) else None in
  (table, sets, where)

let parse_delete_body st =
  eat_kw st "FROM";
  let table = table_ident st in
  let where = if try_kw st "WHERE" then Some (parse_expr st) else None in
  (table, where)

(* ---------------------------------------------------- annotation commands *)

let parse_target_list st =
  (* t.anntable [, t.anntable ...] *)
  let rec go acc =
    let table = ident st in
    eat_symbol st ".";
    let ann = any_ident st in
    if try_symbol st "," then go ((table, ann) :: acc) else List.rev ((table, ann) :: acc)
  in
  go []

let parse_on_clause st =
  eat_kw st "ON";
  eat_symbol st "(";
  let clause =
    if at_kw st "SELECT" then Ast.On_select (parse_select st)
    else if try_kw st "INSERT" then
      match parse_insert st with
      | Ast.Insert { table; values } -> Ast.On_insert { table; values }
      | _ -> assert false
    else if try_kw st "UPDATE" then begin
      let table, sets, where = parse_update_body st in
      Ast.On_update { table; sets; where }
    end
    else if try_kw st "DELETE" then begin
      let table, where = parse_delete_body st in
      Ast.On_delete { table; where }
    end
    else fail "expected SELECT/INSERT/UPDATE/DELETE in ON (...)"
  in
  eat_symbol st ")";
  clause

let parse_between st =
  if try_kw st "BETWEEN" then begin
    let lo = int_lit st in
    eat_kw st "AND";
    let hi = int_lit st in
    Some (lo, hi)
  end
  else None

let parse_archive_like st ~restore =
  eat_kw st "ANNOTATION";
  eat_kw st "FROM";
  let targets = parse_target_list st in
  let between = parse_between st in
  eat_kw st "ON";
  eat_symbol st "(";
  let select = parse_select st in
  eat_symbol st ")";
  if restore then Ast.Restore_annotation { targets; between; on = select }
  else Ast.Archive_annotation { targets; between; on = select }

(* ------------------------------------------------------------ authorization *)

let parse_grantee st =
  if try_kw st "GROUP" then Acl.Group (ident st) else Acl.User (ident st)

let parse_privilege st =
  match Acl.privilege_of_name (any_ident st) with
  | Some p -> p
  | None -> fail "expected SELECT/INSERT/UPDATE/DELETE"

let parse_columns_opt st =
  if try_kw st "COLUMNS" then begin
    eat_symbol st "(";
    let rec go acc =
      let c = any_ident st in
      if try_symbol st "," then go (c :: acc) else List.rev (c :: acc)
    in
    let cols = go [] in
    eat_symbol st ")";
    Some cols
  end
  else None

(* ------------------------------------------------------------- statements *)

let parse_create st =
  if try_kw st "TABLE" then begin
    let name = table_ident st in
    eat_symbol st "(";
    let rec cols acc =
      let cname = ident st in
      let tyname = any_ident st in
      let ty =
        match Value.type_of_name tyname with
        | Some ty -> ty
        | None -> fail "unknown type %s" tyname
      in
      if try_symbol st "," then cols ((cname, ty) :: acc)
      else List.rev ((cname, ty) :: acc)
    in
    let columns = cols [] in
    eat_symbol st ")";
    Ast.Create_table { name; columns }
  end
  else if try_kw st "ANNOTATION" then begin
    eat_kw st "TABLE";
    let name = ident st in
    eat_kw st "ON";
    let table = ident st in
    let scheme =
      if try_kw st "SCHEME" then
        if try_kw st "CELL" then Some Ann_store.Cell
        else begin
          eat_kw st "COMPACT";
          Some Ann_store.Compact
        end
      else None
    in
    let category = if try_kw st "CATEGORY" then Some (any_ident st) else None in
    let indexed = try_kw st "INDEXED" in
    Ast.Create_ann_table { table; name; scheme; category; indexed }
  end
  else if try_kw st "INDEX" then begin
    let name = ident st in
    eat_kw st "ON";
    let table = table_ident st in
    eat_symbol st "(";
    let column = any_ident st in
    eat_symbol st ")";
    Ast.Create_index { name; table; column }
  end
  else if try_kw st "USER" then Ast.Create_user (ident st)
  else if try_kw st "GROUP" then Ast.Create_group (ident st)
  else if try_kw st "DEPENDENCY" then begin
    let id = ident st in
    eat_kw st "FROM";
    let rec sources acc =
      let table = ident st in
      eat_symbol st ".";
      let col = any_ident st in
      if try_symbol st "," then sources ((table, col) :: acc)
      else List.rev ((table, col) :: acc)
    in
    let sources = sources [] in
    eat_kw st "TO";
    let ttable = ident st in
    eat_symbol st ".";
    let tcol = any_ident st in
    eat_kw st "USING";
    let procedure = any_ident st in
    Ast.Create_dependency { id; sources; target = (ttable, tcol); procedure }
  end
  else fail "expected TABLE/ANNOTATION/INDEX/USER/GROUP/DEPENDENCY after CREATE"

let parse_statement_inner st =
  if at_kw st "SELECT" then Ast.Query (parse_query st)
  else if try_kw st "EXPLAIN" then
    if try_kw st "ANALYZE" then Ast.Explain_analyze (parse_query st)
    else Ast.Explain (parse_query st)
  else if try_kw st "CREATE" then parse_create st
  else if try_kw st "DROP" then begin
    if try_kw st "TABLE" then Ast.Drop_table (table_ident st)
    else if try_kw st "INDEX" then Ast.Drop_index (ident st)
    else begin
      eat_kw st "ANNOTATION";
      eat_kw st "TABLE";
      let name = ident st in
      eat_kw st "ON";
      let table = ident st in
      Ast.Drop_ann_table { table; name }
    end
  end
  else if try_kw st "INSERT" then parse_insert st
  else if try_kw st "UPDATE" then begin
    let table, sets, where = parse_update_body st in
    Ast.Update { table; sets; where }
  end
  else if try_kw st "DELETE" then begin
    let table, where = parse_delete_body st in
    Ast.Delete { table; where }
  end
  else if try_kw st "ADD" then begin
    if try_kw st "ANNOTATION" then begin
      eat_kw st "TO";
      let targets = parse_target_list st in
      eat_kw st "VALUE";
      let value = string_lit st in
      let on = parse_on_clause st in
      Ast.Add_annotation { targets; value; on }
    end
    else begin
      eat_kw st "USER";
      let user = ident st in
      eat_kw st "TO";
      eat_kw st "GROUP";
      let group = ident st in
      Ast.Add_user_to_group { user; group }
    end
  end
  else if try_kw st "ARCHIVE" then parse_archive_like st ~restore:false
  else if try_kw st "RESTORE" then parse_archive_like st ~restore:true
  else if try_kw st "START" then begin
    eat_kw st "CONTENT";
    eat_kw st "APPROVAL";
    eat_kw st "ON";
    let table = ident st in
    let columns = parse_columns_opt st in
    eat_kw st "APPROVED";
    eat_kw st "BY";
    let approver = parse_grantee st in
    Ast.Start_approval { table; columns; approver }
  end
  else if try_kw st "STOP" then begin
    eat_kw st "CONTENT";
    eat_kw st "APPROVAL";
    eat_kw st "ON";
    let table = ident st in
    let columns = parse_columns_opt st in
    Ast.Stop_approval { table; columns }
  end
  else if try_kw st "APPROVE" then Ast.Approve (int_lit st)
  else if try_kw st "DISAPPROVE" then Ast.Disapprove (int_lit st)
  else if try_kw st "SHOW" then begin
    if try_kw st "PENDING" then
      if try_kw st "ON" then Ast.Show_pending (Some (ident st)) else Ast.Show_pending None
    else if try_kw st "OUTDATED" then Ast.Show_outdated (ident st)
    else if try_kw st "TABLES" then Ast.Show_tables
    else if try_kw st "PROVENANCE" then begin
      let table = ident st in
      eat_kw st "ROW";
      let row = int_lit st in
      eat_kw st "COLUMN";
      let column = any_ident st in
      let at = if try_kw st "AT" then Some (int_lit st) else None in
      Ast.Show_provenance { table; row; column; at }
    end
    else begin
      eat_kw st "DEPENDENCIES";
      Ast.Show_dependencies
    end
  end
  else if try_kw st "GRANT" then begin
    let privilege = parse_privilege st in
    eat_kw st "ON";
    let table = table_ident st in
    let columns = parse_columns_opt st in
    eat_kw st "TO";
    let grantee = parse_grantee st in
    Ast.Grant { privilege; table; columns; grantee }
  end
  else if try_kw st "REVOKE" then begin
    let privilege = parse_privilege st in
    eat_kw st "ON";
    let table = table_ident st in
    eat_kw st "FROM";
    let grantee = parse_grantee st in
    Ast.Revoke { privilege; table; grantee }
  end
  else if try_kw st "LINK" then begin
    eat_kw st "DEPENDENCY";
    let id = ident st in
    eat_kw st "FROM";
    eat_symbol st "(";
    let rec rows acc =
      let r = int_lit st in
      if try_symbol st "," then rows (r :: acc) else List.rev (r :: acc)
    in
    let source_rows = rows [] in
    eat_symbol st ")";
    eat_kw st "TO";
    let target_row = int_lit st in
    Ast.Link_dependency { id; source_rows; target_row }
  end
  else if try_kw st "COPY" then begin
    let table = table_ident st in
    let direction =
      if try_kw st "FROM" then `From
      else begin
        eat_kw st "TO";
        `To
      end
    in
    let path = string_lit st in
    let format =
      if try_kw st "FORMAT" then
        if try_kw st "FASTA" then Ast.Fasta
        else begin
          eat_kw st "CSV";
          Ast.Csv
        end
      else Ast.Csv
    in
    match direction with
    | `From -> Ast.Copy_from { table; path; format }
    | `To -> Ast.Copy_to { table; path; format }
  end
  else if try_kw st "DESCRIBE" then Ast.Describe (table_ident st)
  else if try_kw st "ANALYZE" then begin
    (* ANALYZE [table] -- bare ANALYZE covers every table *)
    match peek st with
    | Lexer.Ident s when not (List.mem (String.uppercase_ascii s) reserved) ->
        Ast.Analyze_stats (Some (table_ident st))
    | _ -> Ast.Analyze_stats None
  end
  else if try_kw st "VALIDATE" then begin
    let table = ident st in
    eat_kw st "ROW";
    let row = int_lit st in
    eat_kw st "COLUMN";
    let column = any_ident st in
    Ast.Validate_cell { table; row; column }
  end
  else fail "unrecognized statement start: %s" (Lexer.token_text (peek st))

let parse_one st =
  let stmt = parse_statement_inner st in
  ignore (try_symbol st ";");
  stmt

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      match parse_one st with
      | stmt ->
          if peek st = Lexer.Eof then Ok stmt
          else Error (Printf.sprintf "trailing input at %s" (Lexer.token_text (peek st)))
      | exception Parse_failure msg -> Error msg)

let parse_multi src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      let rec go acc =
        if peek st = Lexer.Eof then Ok (List.rev acc)
        else
          match parse_one st with
          | stmt -> go (stmt :: acc)
          | exception Parse_failure msg -> Error msg
      in
      go [])

(** The A-SQL executor: evaluates parsed statements against a
    {!Context.t} on behalf of a session user.

    Query answers are annotated rowsets: annotations propagate per the
    Section 3.4 semantics, archived annotations stay out, and cells the
    dependency manager has marked outdated arrive with a system Quality
    annotation ("outdated: needs re-verification") — Section 5's
    "reporting and annotating outdated data". *)

type outcome =
  | Rows of Bdbms_annotation.Propagate.t
  | Count of { affected : int; verb : string }
  | Message of string
  | Entries of Bdbms_auth.Approval.entry list

exception Read_only of string
(** Raised (before any mutation) when a write or DDL statement arrives
    while the engine is in read-only degraded mode; the payload is the
    reason recorded at entry.  Deliberately not folded into {!execute}'s
    [Error] so the engine layers can map it to a retryable error. *)

exception View_read_only of string
(** Raised (before any engine state is touched) when a write or DDL
    statement — INSERT/UPDATE/DELETE, DROP/CREATE TABLE, CREATE INDEX,
    COPY FROM, annotation DDL, or an explicit ANALYZE — targets a
    [sys.*] system view; the payload is the canonical view name.
    {!execute} folds it into [Error "... is a read-only system view"]. *)

val is_write_stmt : Ast.statement -> bool
(** True for statements that mutate the database (data writes or DDL);
    [COPY TO] exports to a file and does not count. *)

val execute :
  Context.t -> user:string -> Ast.statement -> (outcome, string) result
(** Evaluate one statement.  SQL-level failures return [Error];
    {!Read_only}, {!Bdbms_util.Cancel.Cancelled} (statement deadline)
    and {!Bdbms_storage.Backend.Io_degraded} (retry budget exhausted)
    propagate as exceptions for the transaction layer to handle. *)

val analyze_query :
  Context.t ->
  user:string ->
  Ast.query ->
  Analyze.node option * Bdbms_annotation.Propagate.t * Bdbms_util.Timer.ns
(** Execute [q] with the {!Analyze} recorder installed: the recorded
    operator tree (if any), the result rows, and total wall time.  This
    is [EXPLAIN ANALYZE] before rendering; exposed so tests can compare
    per-node actuals against the naive oracle. *)

val reanalyze_stale : Context.t -> unit
(** Re-run ANALYZE for every registered table whose statistics are marked
    stale (by DML churn or EXPLAIN ANALYZE drift feedback); entries for
    dropped tables are discarded.  [Db.exec] calls this at each statement
    boundary. *)

val run : Context.t -> user:string -> string -> (outcome, string) result
(** Parse then execute one statement. *)

val run_script :
  Context.t -> user:string -> string -> (outcome list, string) result
(** Parse and execute a [;]-separated script, stopping at the first
    error. *)

val render : outcome -> string
(** Human-readable rendering: a table of rows with their annotations
    footnoted, an affected-row count, or a message. *)

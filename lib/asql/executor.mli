(** The A-SQL executor: evaluates parsed statements against a
    {!Context.t} on behalf of a session user.

    Query answers are annotated rowsets: annotations propagate per the
    Section 3.4 semantics, archived annotations stay out, and cells the
    dependency manager has marked outdated arrive with a system Quality
    annotation ("outdated: needs re-verification") — Section 5's
    "reporting and annotating outdated data". *)

type outcome =
  | Rows of Bdbms_annotation.Propagate.t
  | Count of { affected : int; verb : string }
  | Message of string
  | Entries of Bdbms_auth.Approval.entry list

val execute :
  Context.t -> user:string -> Ast.statement -> (outcome, string) result

val analyze_query :
  Context.t ->
  user:string ->
  Ast.query ->
  Analyze.node option * Bdbms_annotation.Propagate.t * Bdbms_util.Timer.ns
(** Execute [q] with the {!Analyze} recorder installed: the recorded
    operator tree (if any), the result rows, and total wall time.  This
    is [EXPLAIN ANALYZE] before rendering; exposed so tests can compare
    per-node actuals against the naive oracle. *)

val run : Context.t -> user:string -> string -> (outcome, string) result
(** Parse then execute one statement. *)

val run_script :
  Context.t -> user:string -> string -> (outcome list, string) result
(** Parse and execute a [;]-separated script, stopping at the first
    error. *)

val render : outcome -> string
(** Human-readable rendering: a table of rows with their annotations
    footnoted, an affected-row count, or a message. *)

module Disk = Bdbms_storage.Disk
module Meta_page = Bdbms_storage.Meta_page
module Stats = Bdbms_storage.Stats
module Pager = Bdbms_storage.Pager
module Clock = Bdbms_util.Clock
module Catalog = Bdbms_relation.Catalog
module Manager = Bdbms_annotation.Manager
module Prov_store = Bdbms_provenance.Prov_store
module Tracker = Bdbms_dependency.Tracker
module Procedure = Bdbms_dependency.Procedure
module Principal = Bdbms_auth.Principal
module Acl = Bdbms_auth.Acl
module Approval = Bdbms_auth.Approval
module Obs = Bdbms_obs.Obs
module Cancel = Bdbms_util.Cancel

(* The three SELECT engines.  [`Naive] materializes every intermediate
   (the semantic oracle), [`Tuple] is the pipelined volcano executor,
   [`Batch] the vectorized path (falling back to [`Tuple] for
   annotated/ASQL-extended queries and plan shapes it does not cover). *)
type exec_mode = [ `Naive | `Tuple | `Batch ]

let exec_mode_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some `Naive
  | "tuple" -> Some `Tuple
  | "batch" -> Some `Batch
  | _ -> None

let exec_mode_name = function
  | `Naive -> "naive"
  | `Tuple -> "tuple"
  | `Batch -> "batch"

type index_def = {
  idx_name : string;
  idx_table : string;
  idx_column : string;
  mutable tree : Bdbms_index.Btree.t;
  mutable built : bool;
  mutable dirty : bool;
}

type t = {
  disk : Disk.t;
  bp : Pager.t;
  clock : Clock.t;
  catalog : Catalog.t;
  ann : Manager.t;
  prov : Prov_store.t;
  tracker : Tracker.t;
  principals : Principal.t;
  acl : Acl.t;
  approval : Approval.t;
  mutable strict_acl : bool;
  mutable auto_provenance : bool;
  mutable exec_mode : exec_mode;
  mutable batch_rows : int;
  indexes : (string, index_def) Hashtbl.t;
  tstats : Bdbms_stats.Registry.t;
      (* per-table optimizer statistics (ANALYZE results + DML deltas);
         persisted through the durable catalog as opaque blobs *)
  obs : Obs.t;
  cancel : Cancel.t;
      (* cooperative cancellation/deadline token shared with the pager
         and the backend retry loops (via [Disk.set_cancel]) *)
  mutable read_only : string option;
      (* [Some reason] while the engine is in degraded mode: write
         statements fail fast with a retryable error, reads keep
         serving *)
  mutable analyze : Analyze.t option;
  mutable session_label : string option;
      (* owning session (server mode), for trace-span attribution *)
  mutable sys_providers :
    (string * (unit -> Bdbms_relation.Tuple.t list)) list;
      (* extra row sources for sys.* virtual tables, keyed by view name.
         The server installs the live-session provider here; an entry
         shadows the view's built-in local fallback.  Copied across
         [Db.rollback]'s context recreation and into transaction
         snapshots. *)
}

let superuser = "admin"

let norm = String.lowercase_ascii

let create ?(page_size = 4096) ?pool_pages ?policy ?path ?disk ?fault ?obs ()
    =
  (* The observability handle outlives the context: [Db.rollback]
     recreates the context but passes the same handle back in, so traces
     and histograms accumulate across transactions. *)
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let disk =
    match (disk, path) with
    | Some disk, _ ->
        (* caller-supplied store — the server's per-snapshot overlay *)
        disk
    | None, None -> Disk.create ~page_size ?pool_pages ?policy ~obs ()
    | None, Some path ->
        Disk.open_file ~page_size ?fault ?pool_pages ?policy ~obs path
  in
  (* the catalog root must own page 0, so reserve it before any table or
     heap file can allocate (no-op when reopening an existing file) *)
  if Disk.is_durable disk then Meta_page.ensure_root disk;
  let cancel = Cancel.create () in
  Disk.set_cancel disk (Some cancel);
  let bp = Disk.pager disk in
  let clock = Clock.create () in
  let catalog = Catalog.create bp in
  let ann = Manager.create bp clock in
  let prov = Prov_store.create ann in
  let tracker = Tracker.create catalog in
  let principals = Principal.create () in
  ignore (Principal.add_user principals superuser);
  let acl = Acl.create principals in
  let approval = Approval.create catalog principals clock in
  let indexes = Hashtbl.create 8 in
  let mark_dirty table =
    Hashtbl.iter
      (fun _ idx -> if norm idx.idx_table = norm table then idx.dirty <- true)
      indexes
  in
  Approval.set_on_revert approval (fun ~table ~row ~col ->
      mark_dirty table;
      match col with
      | Some col -> ignore (Tracker.on_cell_update tracker ~table ~row ~col)
      | None -> ());
  {
    disk;
    bp;
    clock;
    catalog;
    ann;
    prov;
    tracker;
    principals;
    acl;
    approval;
    strict_acl = false;
    auto_provenance = false;
    exec_mode = `Batch;
    batch_rows = 1024;
    indexes;
    tstats = Bdbms_stats.Registry.create ();
    obs;
    cancel;
    read_only = None;
    analyze = None;
    session_label = None;
    sys_providers = [];
  }

let durable t = Disk.is_durable t.disk

(* Run [f] under a statement deadline (no-op when [timeout_ms] is
   [None]); any cancellation state is restored afterwards. *)
let with_deadline t ?timeout_ms f = Cancel.with_deadline t.cancel ?timeout_ms f

let components t =
  {
    Durable_catalog.dc_clock = t.clock;
    dc_catalog = t.catalog;
    dc_ann = t.ann;
    dc_prov = t.prov;
    dc_tracker = t.tracker;
    dc_principals = t.principals;
    dc_acl = t.acl;
    dc_approval = t.approval;
  }

let index_infos t =
  Hashtbl.fold
    (fun _ idx acc ->
      {
        Durable_catalog.ix_name = idx.idx_name;
        ix_table = idx.idx_table;
        ix_column = idx.idx_column;
      }
      :: acc)
    t.indexes []

(* Serialize the whole engine metadata into the page-0 catalog.  The
   chain pages go through pin-scoped mutation, so the catalog is
   redo-logged at write-back and becomes durable exactly with the commit
   that follows. *)
let persist_catalog t =
  if durable t then
    Obs.timed t.obs t.obs.Obs.root_swap_hist "catalog.root_swap" (fun () ->
        Meta_page.write_root t.disk
          (Durable_catalog.encode (components t) ~indexes:(index_infos t)
             ~stats:(Bdbms_stats.Registry.encode_all t.tstats)))

let bootstrap t =
  Obs.span t.obs "catalog.bootstrap" @@ fun () ->
  (* A snapshot overlay is not durable but carries the committed catalog
     root at page 0 through its base — bootstrap from it all the same. *)
  match
    if durable t || Disk.is_overlay t.disk then Meta_page.read_root t.disk
    else None
  with
  | None -> 0
  | Some blob ->
      let infos, stats_blobs, count =
        Durable_catalog.restore t.bp (components t) blob
      in
      Bdbms_stats.Registry.restore t.tstats stats_blobs;
      List.iter
        (fun (ix : Durable_catalog.index_info) ->
          Hashtbl.replace t.indexes (norm ix.ix_name)
            {
              idx_name = ix.ix_name;
              idx_table = ix.ix_table;
              idx_column = ix.ix_column;
              tree = Bdbms_index.Btree.create t.bp;
              built = false;
              dirty = false;
            })
        infos;
      Stats.record_catalog_replayed (Disk.stats t.disk) count;
      count

(* Durability control: [Disk.commit]/[Disk.checkpoint] write back every
   dirty frame (appending the redo records) before the log operation. *)
let commit t =
  persist_catalog t;
  Disk.commit t.disk

let checkpoint t =
  persist_catalog t;
  Disk.checkpoint t.disk

let close t =
  if not (Disk.crashed t.disk) then persist_catalog t;
  Disk.close t.disk

let register_procedure t proc =
  Procedure.Registry.register (Tracker.registry t.tracker) proc

let indexes_on t ~table =
  Hashtbl.fold
    (fun _ idx acc -> if norm idx.idx_table = norm table then idx :: acc else acc)
    t.indexes []

let mark_indexes_dirty t ~table =
  List.iter (fun idx -> idx.dirty <- true) (indexes_on t ~table)

let index_key v =
  let module Value = Bdbms_relation.Value in
  let module Key_codec = Bdbms_index.Key_codec in
  match v with
  | Value.VNull -> "\000"
  | Value.VInt n -> "i" ^ Key_codec.of_int n
  | Value.VFloat f -> "f" ^ Key_codec.of_float f
  | Value.VBool b -> if b then "b1" else "b0"
  | v -> "s" ^ Value.as_string v

(** The durable catalog codec: every piece of engine metadata — table
    schemas and heap roots, annotation-table definitions, the annotation
    registry, dependency rules and instances, outdated marks, principals,
    ACL grants, the approval log, provenance tool registrations, index
    definitions and the logical clock — serialized as versioned,
    CRC-framed records into one blob.  {!Meta_page} anchors the blob at
    page 0; {!Context} writes it at every durable commit and feeds it
    back through {!restore} when a database file is reopened, so
    [Db.create ~path] bootstraps the full engine with zero manual
    re-registration.

    Blob layout: ["BCAT"] magic, u32 format version, u32 record count,
    then records.  Record: u8 tag, u32 payload length, payload, u32
    CRC-32 of the payload.  Unknown tags are skipped on restore (forward
    compatibility); a bad record CRC raises {!Malformed}. *)

exception Malformed of string
(** The blob (already page- and blob-CRC-verified by {!Meta_page})
    fails record-level verification or refers to impossible state. *)

type index_info = { ix_name : string; ix_table : string; ix_column : string }
(** A secondary-index definition, decoupled from {!Context.index_def}
    so the codec does not depend on the context (trees are not
    serialized — they are rebuilt lazily on first use). *)

(** The component handles the codec reads from / writes into.  Passing
    them explicitly (rather than a [Context.t]) keeps the dependency
    arrow pointing one way. *)
type components = {
  dc_clock : Bdbms_util.Clock.t;
  dc_catalog : Bdbms_relation.Catalog.t;
  dc_ann : Bdbms_annotation.Manager.t;
  dc_prov : Bdbms_provenance.Prov_store.t;
  dc_tracker : Bdbms_dependency.Tracker.t;
  dc_principals : Bdbms_auth.Principal.t;
  dc_acl : Bdbms_auth.Acl.t;
  dc_approval : Bdbms_auth.Approval.t;
}

val encode : components -> indexes:index_info list -> stats:string list -> Bytes.t
(** Deterministic: dumps are sorted, so identical metadata encodes to
    identical bytes.  [stats] carries the optimizer-statistics blobs
    (one opaque, internally versioned record per analyzed table,
    produced by [Bdbms_stats.Registry.encode_all]) — the catalog frames
    them under its own tag without looking inside. *)

val restore :
  Bdbms_storage.Pager.t -> components -> Bytes.t ->
  index_info list * string list * int
(** Feed a blob back into freshly created (empty) components; returns
    the index definitions to re-register, the opaque statistics blobs
    to hand back to [Bdbms_stats.Registry.restore], and the number of
    catalog records replayed.  Procedure chains are rebound against the
    tracker's registry by name: a procedure registered before restore
    (e.g. the built-in bio tools) keeps its executable body and adopts
    the persisted version; a missing one becomes a non-executable
    placeholder, so its targets can still be marked outdated.
    @raise Malformed on a framing or record-CRC failure. *)

(** The [sys.*] introspection views: live engine state — metrics,
    histograms, sessions, table statistics, the slow-query ring, and
    trace spans — surfaced as read-only virtual relations that the
    regular planner and every SELECT engine scan like tables (the batch
    path falls back to tuples, counted in [batch_fallbacks]).

    Views materialize a consistent snapshot at plan time and are not in
    the catalog: writes against them raise
    {!Executor.View_read_only}, ANALYZE never visits them, and the
    server can inject live rows (e.g. the session table) through
    {!Context.t.sys_providers}. *)

val is_sys : string -> bool
(** Case-insensitive ["sys."] name-prefix test. *)

val is_privileged : string -> bool
(** [sys.sessions] and [sys.slow_queries] expose other users' activity,
    so they require an explicit SELECT grant (or the superuser) even
    outside strict-ACL mode. *)

val view_names : string list
(** Canonical (lowercase) names of every view. *)

val schema_of : string -> Bdbms_relation.Schema.t option
(** Schema of a view by (case-insensitive) name. *)

val materialize :
  Context.t -> user:string -> string -> Plan.rel option
(** Snapshot one view as a {!Plan.Virtual} relation; [None] for an
    unknown [sys.*] name.  [user] labels the local fallback row of
    [sys.sessions] when no server provider is installed. *)

module Table = Bdbms_relation.Table
module Schema = Bdbms_relation.Schema
module Catalog = Bdbms_relation.Catalog
module Manager = Bdbms_annotation.Manager
module Ann_store = Bdbms_annotation.Ann_store

type estimate = { rows : float; pages : float }

type warning = Unknown_table of string

let warning_text = function
  | Unknown_table t ->
      Printf.sprintf "warning: unknown table %s - estimates default to zero" t

(* selectivity heuristics live in Plan so the optimizer and EXPLAIN agree *)
let selectivity = Plan.selectivity
let awhere_selectivity = 0.5
let distinct_factor = 0.8

type node = {
  label : string;
  est : estimate;
  src : Plan.est_src;
      (* every node carries its estimate source: [Stats] only when all
         the statistics feeding its estimate came from ANALYZE *)
  children : node list;
}

(* a derived estimate is stats-sourced only when both inputs are *)
let meet a b =
  match (a, b) with Plan.Stats, Plan.Stats -> Plan.Stats | _ -> Plan.Heuristic

(* Annotation-store page accounting for a FROM item: an unindexed
   annotation lookup rescans the store per row. *)
let ann_cost (ctx : Context.t) (f : Ast.from_item) rows =
  match f.Ast.ann_tables with
  | None -> (0.0, "")
  | Some names ->
      let names =
        if names = [ "*" ] then
          Manager.annotation_table_names ctx.ann ~table_name:f.Ast.table
        else names
      in
      let pages =
        List.fold_left
          (fun acc n ->
            match Manager.store_of ctx.ann ~table_name:f.Ast.table ~name:n with
            | Some store ->
                acc
                +. float_of_int (Ann_store.storage_pages store)
                +. float_of_int (Ann_store.index_pages store)
            | None -> acc)
          0.0 names
      in
      ( pages *. Float.max 1.0 rows,
        Printf.sprintf " ANNOTATION(%s)" (String.concat "," names) )

(* Relation behind a FROM item: a catalog table, or a sys.* view
   materialized for its row count (estimation does not care who asks, so
   the local-session fallback user is fine here). *)
let rel_of (ctx : Context.t) (f : Ast.from_item) =
  if Sysview.is_sys f.Ast.table then
    Sysview.materialize ctx ~user:"local" f.Ast.table
  else
    Option.map (fun t -> Plan.Base t) (Catalog.find ctx.catalog f.Ast.table)

let rel_pages = function
  | Plan.Base t -> float_of_int (Table.storage_pages t)
  | Plan.Virtual _ -> 0.0 (* in-memory snapshot: no page I/O *)

let scan_node ?(warn = fun _ -> ()) (ctx : Context.t) (f : Ast.from_item) =
  match rel_of ctx f with
  | None ->
      (* surfaced as a typed warning, not silently folded into zeros *)
      warn (Unknown_table f.Ast.table);
      {
        label = Printf.sprintf "SCAN %s  (unknown table!)" f.Ast.table;
        est = { rows = 0.0; pages = 0.0 };
        src = Plan.Heuristic;
        children = [];
      }
  | Some rel ->
      let rows = float_of_int (Plan.rel_live_count rel) in
      let pages = rel_pages rel in
      let ann_pages, ann_label = ann_cost ctx f rows in
      {
        label = Printf.sprintf "SCAN %s%s" f.Ast.table ann_label;
        est = { rows; pages = pages +. ann_pages };
        src = Plan.Heuristic;
        children = [];
      }

(* ------------------------------------------- plan-driven FROM/WHERE tree *)

(* Access path + pushed predicates for one planned source. *)
let source_node ctx (src : Plan.source) =
  let f = src.Plan.item in
  let table_rows = float_of_int (Plan.rel_live_count src.Plan.rel) in
  let table_pages = rel_pages src.Plan.rel in
  let ann_pages, ann_label = ann_cost ctx f table_rows in
  let scan =
    match src.Plan.access with
    | Plan.Seq_scan ->
        {
          label = Printf.sprintf "SCAN %s%s" f.Ast.table ann_label;
          est = { rows = table_rows; pages = table_pages +. ann_pages };
          src = src.Plan.est_src;
          children = [];
        }
    | Plan.Index_probe { index; value = _ } ->
        {
          label =
            Printf.sprintf "INDEX SCAN %s via %s(%s)%s" f.Ast.table
              index.Context.idx_name index.Context.idx_column ann_label;
          est =
            {
              rows = src.Plan.access_est;
              pages = Float.min table_pages 4.0 +. ann_pages;
            };
          src = src.Plan.est_src;
          children = [];
        }
  in
  match src.Plan.pushed with
  | [] -> scan
  | es ->
      let sel =
        let ts = Bdbms_stats.Registry.find ctx.Context.tstats
            (Plan.rel_name src.Plan.rel) in
        Plan.conjuncts_selectivity_for ts ~schema:src.Plan.schema es
      in
      {
        label = Printf.sprintf "WHERE (selectivity %.2f)" sel;
        est = { rows = src.Plan.est_rows; pages = scan.est.pages };
        src = src.Plan.est_src;
        children = [ scan ];
      }

(* One join step: the accumulated left tree joined with the step's source,
   then any deferred (post-join) conjuncts. *)
let step_node ctx joined_schema acc (step : Plan.step) =
  let right = source_node ctx step.Plan.src in
  let post_sel = Plan.conjuncts_selectivity step.Plan.post in
  let join_rows =
    if post_sel > 0.0 then step.Plan.est_rows /. post_sel
    else step.Plan.est_rows
  in
  let jsrc = meet acc.src right.src in
  let joined =
    match step.Plan.kind with
    | Plan.Hash { left_cols; right_cols; build_left; left_acc_cols = _ } ->
        let col p = (Schema.column_at joined_schema p).Schema.name in
        let keys =
          List.map2
            (fun l r -> Printf.sprintf "%s=%s" (col l) (col r))
            left_cols right_cols
        in
        {
          label =
            Printf.sprintf "HASH JOIN (%s, build=%s)"
              (String.concat ", " keys)
              (if build_left then "left" else "right");
          est = { rows = join_rows; pages = acc.est.pages +. right.est.pages };
          src = jsrc;
          children = [ acc; right ];
        }
    | Plan.Nested ->
        {
          label = "BLOCK NESTED-LOOP JOIN";
          est = { rows = join_rows; pages = acc.est.pages +. right.est.pages };
          src = jsrc;
          children = [ acc; right ];
        }
  in
  match step.Plan.post with
  | [] -> joined
  | es ->
      {
        label =
          Printf.sprintf "POST-JOIN WHERE (selectivity %.2f)"
            (Plan.conjuncts_selectivity es);
        est = { rows = step.Plan.est_rows; pages = joined.est.pages };
        src = jsrc;
        children = [ joined ];
      }

(* FROM/WHERE subtree through the planner when every table exists and the
   WHERE resolves; legacy rendering otherwise (so EXPLAIN never fails). *)
let planned_from_where ctx (sel : Ast.select) =
  let entries =
    List.map
      (fun (f : Ast.from_item) -> Option.map (fun r -> (f, r)) (rel_of ctx f))
      sel.Ast.from
  in
  if sel.Ast.from = [] || List.exists Option.is_none entries then None
  else
    let entries = List.filter_map Fun.id entries in
    let frame = Plan.frame entries in
    match sel.Ast.where with
    | Some e
      when Resolve.map_expr_opt frame.Plan.schema ~prefixes:frame.Plan.prefixes e
           = None ->
        None (* unresolvable column reference: fall back *)
    | _ ->
        let where =
          Option.bind sel.Ast.where
            (Resolve.map_expr_opt frame.Plan.schema ~prefixes:frame.Plan.prefixes)
        in
        let plan = Plan.build ctx frame ~where in
        let base = source_node ctx plan.Plan.base in
        Some
          (List.fold_left
             (step_node ctx plan.Plan.schema)
             base plan.Plan.steps)

(* Legacy FROM/WHERE rendering: flat nested-loop fold with the whole WHERE
   applied on top.  Used for unknown tables and unresolvable predicates. *)
let legacy_from_where ?warn ctx (sel : Ast.select) =
  let scans = List.map (scan_node ?warn ctx) sel.Ast.from in
  let joined =
    match scans with
    | [] ->
        {
          label = "EMPTY";
          est = { rows = 0.0; pages = 0.0 };
          src = Plan.Heuristic;
          children = [];
        }
    | [ s ] -> s
    | first :: rest ->
        List.fold_left
          (fun acc s ->
            {
              label = "NESTED-LOOP JOIN";
              est =
                {
                  rows = acc.est.rows *. s.est.rows;
                  pages = acc.est.pages +. s.est.pages;
                };
              src = meet acc.src s.src;
              children = [ acc; s ];
            })
          first rest
  in
  match sel.Ast.where with
  | None -> joined
  | Some e ->
      let sel_f = selectivity e in
      {
        label = Printf.sprintf "WHERE (selectivity %.2f)" sel_f;
        est = { joined.est with rows = joined.est.rows *. sel_f };
        src = joined.src;
        children = [ joined ];
      }

let rec select_node ?warn ctx (sel : Ast.select) =
  let with_where =
    match planned_from_where ctx sel with
    | Some n -> n
    | None -> legacy_from_where ?warn ctx sel
  in
  let with_awhere =
    match sel.Ast.awhere with
    | None -> with_where
    | Some p ->
        {
          label = Format.asprintf "AWHERE %a" Bdbms_annotation.Ann_pred.pp p;
          est = { with_where.est with rows = with_where.est.rows *. awhere_selectivity };
          src = with_where.src;
          children = [ with_where ];
        }
  in
  let with_group =
    if sel.Ast.group_by = [] then with_awhere
    else
      let groups = Float.max 1.0 (with_awhere.est.rows /. 10.0) in
      {
        label = Printf.sprintf "GROUP BY %s" (String.concat "," sel.Ast.group_by);
        est = { with_awhere.est with rows = groups };
        src = with_awhere.src;
        children = [ with_awhere ];
      }
  in
  let projected =
    let item_count = List.length sel.Ast.items in
    {
      label =
        (if sel.Ast.items = [ Ast.Star ] then "PROJECT *"
         else Printf.sprintf "PROJECT (%d items)" item_count);
      est = with_group.est;
      src = with_group.src;
      children = [ with_group ];
    }
  in
  let with_filter =
    match sel.Ast.filter with
    | None -> projected
    | Some p ->
        {
          label = Format.asprintf "FILTER %a" Bdbms_annotation.Ann_pred.pp p;
          est = projected.est;
          src = projected.src;
          children = [ projected ];
        }
  in
  let with_distinct =
    if sel.Ast.distinct then
      {
        label = "DISTINCT";
        est = { with_filter.est with rows = with_filter.est.rows *. distinct_factor };
        src = with_filter.src;
        children = [ with_filter ];
      }
    else with_filter
  in
  match (sel.Ast.order_by, sel.Ast.limit) with
  | [], _ -> with_distinct
  | _, Some n ->
      let k = n + Option.value sel.Ast.offset ~default:0 in
      {
        label = Printf.sprintf "TOP-K (k=%d)" k;
        est =
          {
            with_distinct.est with
            rows = Float.min with_distinct.est.rows (float_of_int (max 0 k));
          };
        src = with_distinct.src;
        children = [ with_distinct ];
      }
  | _, None ->
      {
        label = "SORT";
        est = with_distinct.est;
        src = with_distinct.src;
        children = [ with_distinct ];
      }

and query_node ?warn ctx = function
  | Ast.Select sel -> select_node ?warn ctx sel
  | Ast.Union (a, b) ->
      let na = query_node ?warn ctx a and nb = query_node ?warn ctx b in
      {
        label = "UNION";
        est = { rows = na.est.rows +. nb.est.rows; pages = na.est.pages +. nb.est.pages };
        src = meet na.src nb.src;
        children = [ na; nb ];
      }
  | Ast.Intersect (a, b) ->
      let na = query_node ?warn ctx a and nb = query_node ?warn ctx b in
      {
        label = "INTERSECT";
        est =
          {
            rows = Float.min na.est.rows nb.est.rows *. 0.5;
            pages = na.est.pages +. nb.est.pages;
          };
        src = meet na.src nb.src;
        children = [ na; nb ];
      }
  | Ast.Except (a, b) ->
      let na = query_node ?warn ctx a and nb = query_node ?warn ctx b in
      {
        label = "EXCEPT";
        est = { rows = na.est.rows *. 0.5; pages = na.est.pages +. nb.est.pages };
        src = meet na.src nb.src;
        children = [ na; nb ];
      }

let estimate_query ctx q = (query_node ctx q).est

let warnings ctx q =
  let ws = ref [] in
  ignore (query_node ~warn:(fun w -> ws := w :: !ws) ctx q);
  List.rev !ws

let explain ctx q =
  let buf = Buffer.create 256 in
  let ws = ref [] in
  let rec render prefix is_last node =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (if prefix = "" then "" else if is_last then "`- " else "|- ");
    Buffer.add_string buf
      (Printf.sprintf "%s  (est. rows=%.0f, pages=%.0f, est src=%s)\n"
         node.label node.est.rows node.est.pages (Plan.est_src_name node.src));
    let child_prefix =
      if prefix = "" then "  " else prefix ^ (if is_last then "   " else "|  ")
    in
    let rec go = function
      | [] -> ()
      | [ c ] -> render child_prefix true c
      | c :: rest ->
          render child_prefix false c;
          go rest
    in
    go node.children
  in
  render "" true (query_node ~warn:(fun w -> ws := w :: !ws) ctx q);
  List.iter
    (fun w ->
      Buffer.add_string buf (warning_text w);
      Buffer.add_char buf '\n')
    (List.rev !ws);
  Buffer.contents buf

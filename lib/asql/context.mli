(** The assembled bdbms engine: every manager from the architecture of
    Section 2 wired over one buffer pool, one catalog, and one logical
    clock.  The A-SQL executor runs against this; the [Bdbms.Db] facade
    owns one. *)

type exec_mode = [ `Naive | `Tuple | `Batch ]
(** The three SELECT engines.  [`Naive] materializes every intermediate
    result (the semantic oracle for equivalence tests), [`Tuple] is the
    pipelined volcano executor, [`Batch] the vectorized path over column
    batches with selection vectors.  [`Batch] transparently falls back
    to [`Tuple] for annotated/ASQL-extended queries (ANNOTATION, AWHERE,
    provenance propagation) and plan shapes it does not cover, counting
    each fallback in [Stats.batch_fallbacks]. *)

val exec_mode_of_string : string -> exec_mode option
(** Case-insensitive ["naive"] / ["tuple"] / ["batch"]. *)

val exec_mode_name : exec_mode -> string

(** A secondary B+-tree index over one column of a user table.  Indexes
    are maintained incrementally by the executor's DML paths; mutations
    that bypass the executor (approval inverse statements, dependency
    re-derivations) mark them dirty, and a dirty index is rebuilt from a
    table scan on its next use. *)
type index_def = {
  idx_name : string;
  idx_table : string;
  idx_column : string;
  mutable tree : Bdbms_index.Btree.t;
  mutable built : bool;
  mutable dirty : bool;
}

type t = {
  disk : Bdbms_storage.Disk.t;
  bp : Bdbms_storage.Pager.t;
  clock : Bdbms_util.Clock.t;
  catalog : Bdbms_relation.Catalog.t;
  ann : Bdbms_annotation.Manager.t;
  prov : Bdbms_provenance.Prov_store.t;
  tracker : Bdbms_dependency.Tracker.t;
  principals : Bdbms_auth.Principal.t;
  acl : Bdbms_auth.Acl.t;
  approval : Bdbms_auth.Approval.t;
  mutable strict_acl : bool;
      (** when on, non-admin DML and SELECT require GRANTs *)
  mutable auto_provenance : bool;
      (** when on, DML records Local_insert / Local_update provenance *)
  mutable exec_mode : exec_mode;
      (** which SELECT engine runs; the default is [`Batch] (vectorized,
          with transparent tuple fallback for annotated queries) *)
  mutable batch_rows : int;
      (** rows per column batch on the [`Batch] path (default 1024;
          tests use 1 as the degenerate case) *)
  indexes : (string, index_def) Hashtbl.t;
      (** by lowercase index name *)
  tstats : Bdbms_stats.Registry.t;
      (** per-table optimizer statistics: ANALYZE results maintained
          incrementally by the DML paths, consumed by [Plan]/[Cost] for
          selectivity and join ordering, persisted through the durable
          catalog as opaque versioned blobs *)
  obs : Bdbms_obs.Obs.t;
      (** trace spans + metrics; shared with the disk manager and WAL,
          and carried across [Db.rollback]'s context recreation *)
  cancel : Bdbms_util.Cancel.t;
      (** cooperative cancellation/deadline token; also attached to the
          pager (checked at every pin) and the backend retry loops *)
  mutable read_only : string option;
      (** [Some reason] while the engine is in read-only degraded mode:
          write statements fail fast with a retryable error, reads keep
          serving from clean pages *)
  mutable analyze : Analyze.t option;
      (** installed by the executor for the duration of an
          [EXPLAIN ANALYZE] statement; [None] otherwise *)
  mutable session_label : string option;
      (** owning session (server mode), for trace-span attribution *)
  mutable sys_providers :
    (string * (unit -> Bdbms_relation.Tuple.t list)) list;
      (** extra row sources for [sys.*] virtual tables, keyed by view
          name (e.g. ["sys.sessions"]).  The server installs the
          live-session provider here; an entry shadows the view's
          built-in local fallback.  Copied across [Db.rollback]'s
          context recreation and into transaction snapshots. *)
}

val create :
  ?page_size:int -> ?pool_pages:int -> ?policy:Bdbms_storage.Pager.policy ->
  ?path:string -> ?disk:Bdbms_storage.Disk.t ->
  ?fault:Bdbms_storage.Fault.t ->
  ?obs:Bdbms_obs.Obs.t ->
  unit -> t
(** A fresh engine.  The superuser ["admin"] and the system actor exist
    from the start; approval inverse execution is wired into the
    dependency tracker.  [pool_pages] bounds the pager's frame table
    (durable default 256; in-memory default unbounded).  With [path],
    the page store is durable: backed by a database file and write-ahead
    log, with crash recovery run at open (see
    {!Bdbms_storage.Disk.open_file}).  With [disk], the engine runs over
    the caller's store instead of constructing one — this is how the
    multi-session server builds a transaction snapshot: an engine over a
    copy-on-write {!Bdbms_storage.Disk.overlay}, bootstrapped from the
    committed catalog visible through the overlay's base. *)

val durable : t -> bool

val with_deadline : t -> ?timeout_ms:float -> (unit -> 'a) -> 'a
(** Run a thunk under a statement deadline (no-op without [timeout_ms]);
    previous cancellation state is restored on exit.  Expired deadlines
    surface as {!Bdbms_util.Cancel.Cancelled} from the next cooperative
    checkpoint. *)

val bootstrap : t -> int
(** Rebuild the engine's logical state from the page-0 durable catalog:
    table schemas reattach to their heap pages, annotation tables and
    the registry return, dependency rules rebind their procedure chains
    against the registry (so call this {e after} registering built-in
    procedures), grants, approval log, provenance tools and index
    definitions come back.  Returns the number of catalog records
    replayed (0 on a fresh or in-memory database).
    @raise Bdbms_storage.Backend.Corrupt on a CRC failure,
    @raise Durable_catalog.Malformed on a framing failure. *)

val persist_catalog : t -> unit
(** Serialize the current metadata into the page-0 catalog (done
    automatically by {!commit}, {!checkpoint} and {!close}). *)

val commit : t -> unit
(** Write back dirty pager frames (appending their redo records) and
    group-flush the write-ahead log with a commit marker (no-op when not
    durable). *)

val checkpoint : t -> unit
(** {!commit}, then store dirty pages to the database file and reset the
    log. *)

val close : t -> unit
(** Checkpoint (unless crashed) and release the database files. *)

val register_procedure :
  t -> Bdbms_dependency.Procedure.t -> (unit, string) result
(** Make an executable/non-executable procedure available to
    [CREATE DEPENDENCY ... USING name]. *)

val superuser : string
(** ["admin"], exempt from ACL checks. *)

val indexes_on : t -> table:string -> index_def list
(** All indexes registered over a table. *)

val mark_indexes_dirty : t -> table:string -> unit
(** Called when a table is mutated behind the executor's back. *)

val index_key : Bdbms_relation.Value.t -> string
(** Order-preserving byte encoding of a value as an index key. *)

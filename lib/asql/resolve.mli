(** Qualified-column name resolution, shared by the executor, the planner,
    and the cost model so that index matching, predicate pushdown, and
    error reporting all agree on what a column reference means.

    A reference resolves against a schema in three attempts: the exact
    name, then stripping a known [alias_] / [table_] qualifier, then a
    unique [_name] suffix match (a bare column mentioned while the schema
    carries table prefixes). *)

type outcome = Resolved of string | Unknown | Ambiguous

val column :
  Bdbms_relation.Schema.t -> prefixes:string list -> string -> outcome
(** Resolve one column reference.  [prefixes] are the acceptable
    qualifiers (table names and aliases in scope). *)

val column_opt :
  Bdbms_relation.Schema.t -> prefixes:string list -> string -> string option
(** {!column}, collapsing [Unknown] and [Ambiguous] to [None] — for
    callers (index matching, planning) that degrade gracefully rather
    than report an error. *)

val map_expr :
  (string -> string) -> Bdbms_relation.Expr.t -> Bdbms_relation.Expr.t
(** Rewrite every column reference in an expression. *)

val map_expr_opt :
  Bdbms_relation.Schema.t ->
  prefixes:string list ->
  Bdbms_relation.Expr.t ->
  Bdbms_relation.Expr.t option
(** Resolve every column reference in an expression; [None] if any
    reference is unknown or ambiguous. *)

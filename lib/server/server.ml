(* The network front end: listeners (Unix-domain and TCP) accepting
   connections, one handler thread per connection, all sessions sharing
   one [Engine.t].

   A connection's first frame must be [Hello {user}]; authentication
   failures answer [E_auth] and close.  After that, [Query] frames run
   through the session (so BEGIN/COMMIT/ROLLBACK work per connection)
   and [Control] frames answer out-of-band ops.  Every per-request
   failure — SQL errors, conflicts, pool exhaustion, even unexpected
   exceptions — becomes an error *frame*, never a dead server loop: the
   session survives and the client decides whether to retry (the frame
   says if it is retryable). *)

module Executor = Bdbms_asql.Executor
module Pager = Bdbms_storage.Pager
module Stats = Bdbms_storage.Stats
module Obs = Bdbms_obs.Obs
module P = Protocol

type t = {
  engine : Engine.t;
  counters : Stats.t;
  mutable listeners : (Unix.file_descr * string option) list;
      (* fd, unix path to unlink at stop *)
  mutable threads : Thread.t list;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable next_conn : int;
  mu : Mutex.t;
  mutable stopping : bool;
}

let create engine =
  {
    engine;
    counters = Engine.counters engine;
    listeners = [];
    threads = [];
    conns = Hashtbl.create 8;
    next_conn = 0;
    mu = Mutex.create ();
    stopping = false;
  }

(* ------------------------------------------------------------ requests *)

let error_resp (e : Engine.error) =
  let code =
    match e with
    | Engine.Sql _ -> P.E_exec
    | Engine.Conflict _ -> P.E_conflict
    | Engine.Busy _ -> P.E_busy
    | Engine.Closed -> P.E_internal
  in
  P.Error_resp { code; message = Engine.error_message e }

let reply_resp = function
  | Session.Outcome (Executor.Count { affected; verb }) ->
      P.Count { affected; verb }
  | Session.Outcome (Executor.Message m) -> P.Message { text = m }
  | Session.Outcome o ->
      (* Rows and approval entries reuse the REPL rendering server-side *)
      P.Rows { rendered = Executor.render o }
  | Session.Began -> P.Message { text = "BEGIN" }
  | Session.Committed seq -> P.Committed { seq }
  | Session.Rolled_back -> P.Message { text = "ROLLBACK" }

let handle_query session sql =
  match Session.execute session sql with
  | Ok reply -> reply_resp reply
  | Error e -> error_resp e
  | exception Pager.Pool_exhausted _ ->
      P.Error_resp
        { code = P.E_busy; message = "buffer pool exhausted; retry" }
  | exception e ->
      P.Error_resp
        { code = P.E_internal; message = Printexc.to_string e }

let handle_control t session name =
  let module Context = Bdbms_asql.Context in
  match String.lowercase_ascii (String.trim name) with
  | "ping" -> P.Message { text = "pong" }
  | "metrics" -> P.Message { text = Engine.metrics t.engine }
  | "stats" ->
      P.Message
        { text = Format.asprintf "%a" Stats.pp (Engine.stats t.engine) }
  | "exec" ->
      P.Message
        { text = Context.exec_mode_name (Session.exec_mode session) }
  | other -> (
      (* "exec <mode>": session-scoped SELECT-engine override *)
      match String.split_on_char ' ' other with
      | [ "exec"; mode ] -> (
          match Context.exec_mode_of_string mode with
          | Some m ->
              Session.set_exec_mode session (Some m);
              P.Message { text = "exec mode: " ^ Context.exec_mode_name m }
          | None ->
              P.Error_resp
                {
                  code = P.E_proto;
                  message =
                    Printf.sprintf
                      "unknown exec mode %S (naive|tuple|batch)" mode;
                })
      | _ ->
          P.Error_resp
            {
              code = P.E_proto;
              message = Printf.sprintf "unknown control op %S" other;
            })

(* ---------------------------------------------------------- connection *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let register_conn t fd =
  Mutex.protect t.mu (fun () ->
      t.next_conn <- t.next_conn + 1;
      Hashtbl.replace t.conns t.next_conn fd;
      t.next_conn)

let unregister_conn t id = Mutex.protect t.mu (fun () -> Hashtbl.remove t.conns id)

let request_loop t fd session =
  let stats = t.counters in
  let obs = Engine.obs t.engine in
  let span =
    Printf.sprintf "session#%d(%s).request" (Session.id session)
      (Session.user session)
  in
  let continue = ref true in
  while !continue do
    match P.recv_request ~stats fd with
    | None -> continue := false
    | Some req ->
        let resp =
          Obs.timed obs obs.Obs.req_hist span (fun () ->
              match req with
              | P.Hello _ ->
                  P.Error_resp
                    { code = P.E_proto; message = "session already open" }
              | P.Query { sql } -> handle_query session sql
              | P.Control { name } -> handle_control t session name)
        in
        P.send_response ~stats fd resp
  done

let handle_conn t fd =
  let id = register_conn t fd in
  let stats = t.counters in
  (try
     match P.recv_request ~stats fd with
     | None -> ()
     | Some (P.Hello { user }) -> (
         match Session.create t.engine ~user with
         | Ok session ->
             P.send_response ~stats fd
               (P.Hello_ok { session = Session.id session });
             Fun.protect
               ~finally:(fun () -> Session.close session)
               (fun () -> request_loop t fd session)
         | Error e ->
             P.send_response ~stats fd
               (P.Error_resp
                  { code = P.E_auth; message = Engine.error_message e }))
     | Some _ ->
         P.send_response ~stats fd
           (P.Error_resp
              { code = P.E_proto; message = "expected Hello first" })
   with
  | P.Protocol_error _ | Unix.Unix_error _ | End_of_file -> ());
  unregister_conn t id;
  close_quiet fd

(* ----------------------------------------------------------- listeners *)

let accept_loop t lfd =
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | fd, _addr ->
        let th = Thread.create (fun () -> handle_conn t fd) () in
        Mutex.protect t.mu (fun () -> t.threads <- th :: t.threads)
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      ->
        continue := not t.stopping
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let add_listener t lfd ~unix_path =
  Mutex.protect t.mu (fun () ->
      t.listeners <- (lfd, unix_path) :: t.listeners);
  let th = Thread.create (fun () -> accept_loop t lfd) () in
  Mutex.protect t.mu (fun () -> t.threads <- th :: t.threads)

let listen_unix t path =
  (if Sys.file_exists path then
     try Unix.unlink path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  add_listener t lfd ~unix_path:(Some path)

let listen_tcp t ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (addr, port));
  Unix.listen lfd 64;
  add_listener t lfd ~unix_path:None

let bound_port t =
  match
    List.find_map
      (fun (fd, _) ->
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Some port
        | _ -> None)
      t.listeners
  with
  | Some port -> port
  | None -> invalid_arg "Server.bound_port: no TCP listener"

let stop t =
  t.stopping <- true;
  let listeners, conns, threads =
    Mutex.protect t.mu (fun () ->
        let ls = t.listeners and ths = t.threads in
        let cs = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
        t.listeners <- [];
        t.threads <- [];
        Hashtbl.reset t.conns;
        (ls, cs, ths))
  in
  List.iter
    (fun (fd, path) ->
      (* shutdown wakes a thread blocked in [accept]; close alone does
         not on Linux *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      close_quiet fd;
      match path with
      | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | None -> ())
    listeners;
  List.iter
    (fun fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      close_quiet fd)
    conns;
  List.iter Thread.join threads

let engine t = t.engine

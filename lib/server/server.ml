(* The network front end: listeners (Unix-domain and TCP) accepting
   connections, one handler thread per connection, all sessions sharing
   one [Engine.t].

   A connection's first frame must be [Hello {user}]; authentication
   failures answer [E_auth] and close.  After that, [Query] frames run
   through the session (so BEGIN/COMMIT/ROLLBACK work per connection)
   and [Control] frames answer out-of-band ops.  Every per-request
   failure — SQL errors, conflicts, pool exhaustion, even unexpected
   exceptions — becomes an error *frame*, never a dead server loop: the
   session survives and the client decides whether to retry (the frame
   says if it is retryable). *)

module Executor = Bdbms_asql.Executor
module Pager = Bdbms_storage.Pager
module Stats = Bdbms_storage.Stats
module Obs = Bdbms_obs.Obs
module P = Protocol

type conn = { c_fd : Unix.file_descr; mutable c_busy : bool }
(* [c_busy] is true while the handler thread is between receiving a
   request and sending its response — what a graceful drain waits for *)

type t = {
  engine : Engine.t;
  counters : Stats.t;
  idle_timeout_s : float option;
      (* per-connection receive timeout ([SO_RCVTIMEO]): a peer that goes
         quiet mid-frame or between frames for this long is reaped (its
         session closes, rolling back any open transaction) — the
         slow-loris defense *)
  mutable listeners : (Unix.file_descr * string option) list;
      (* fd, unix path to unlink at stop *)
  mutable threads : Thread.t list;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mu : Mutex.t;
  mutable stopping : bool;
}

let create ?idle_timeout_s engine =
  (match idle_timeout_s with
  | Some s when s <= 0. -> invalid_arg "Server.create: idle_timeout_s <= 0"
  | _ -> ());
  (* a peer that vanished mid-response must surface as EPIPE on the
     write (handled per connection), not kill the whole process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* live rows for [sys.sessions]: installed on the canonical context
     (and copied into every snapshot by [Engine.begin_txn]), shadowing
     the view's single-row local fallback *)
  let ctx = Bdbms.Db.context (Engine.db engine) in
  ctx.Bdbms_asql.Context.sys_providers <-
    ("sys.sessions", fun () -> Session.sys_rows engine)
    :: List.remove_assoc "sys.sessions" ctx.Bdbms_asql.Context.sys_providers;
  {
    engine;
    counters = Engine.counters engine;
    idle_timeout_s;
    listeners = [];
    threads = [];
    conns = Hashtbl.create 8;
    next_conn = 0;
    mu = Mutex.create ();
    stopping = false;
  }

(* ------------------------------------------------------------ requests *)

let error_resp (e : Engine.error) =
  let code =
    match e with
    | Engine.Sql _ -> P.E_exec
    | Engine.Conflict _ -> P.E_conflict
    | Engine.Busy _ -> P.E_busy
    | Engine.Timeout _ -> P.E_timeout
    | Engine.Degraded _ -> P.E_degraded
    | Engine.Closed -> P.E_internal
  in
  P.Error_resp { code; message = Engine.error_message e }

let reply_resp = function
  | Session.Outcome (Executor.Count { affected; verb }) ->
      P.Count { affected; verb }
  | Session.Outcome (Executor.Message m) -> P.Message { text = m }
  | Session.Outcome o ->
      (* Rows and approval entries reuse the REPL rendering server-side *)
      P.Rows { rendered = Executor.render o }
  | Session.Began -> P.Message { text = "BEGIN" }
  | Session.Committed seq -> P.Committed { seq }
  | Session.Rolled_back -> P.Message { text = "ROLLBACK" }

let handle_query session ?timeout_ms ?trace_id sql =
  match Session.execute session ?timeout_ms ?trace_id sql with
  | Ok reply -> reply_resp reply
  | Error e -> error_resp e
  | exception Pager.Pool_exhausted _ ->
      P.Error_resp
        { code = P.E_busy; message = "buffer pool exhausted; retry" }
  | exception e ->
      P.Error_resp
        { code = P.E_internal; message = Printexc.to_string e }

let handle_control t session name =
  let module Context = Bdbms_asql.Context in
  let module Db = Bdbms.Db in
  let db = Engine.db t.engine in
  match String.lowercase_ascii (String.trim name) with
  | "ping" -> P.Message { text = "pong" }
  | "metrics" -> P.Message { text = Engine.metrics t.engine }
  | "trace" ->
      P.Message
        { text = (if Db.tracing db then "trace: on" else "trace: off") }
  | "stats" ->
      P.Message
        { text = Format.asprintf "%a" Stats.pp (Engine.stats t.engine) }
  | "exec" ->
      P.Message
        { text = Context.exec_mode_name (Session.exec_mode session) }
  | "timeout" ->
      P.Message
        {
          text =
            (match Session.stmt_timeout_ms session with
            | None -> "timeout: off"
            | Some ms -> Printf.sprintf "timeout: %gms" ms);
        }
  | other -> (
      (* "exec <mode>" / "timeout <ms>|off": session-scoped overrides;
         "trace <op>": engine-wide span-ring control *)
      match String.split_on_char ' ' other with
      | [ "trace"; "on" ] ->
          Db.set_tracing db true;
          P.Message { text = "trace: on" }
      | [ "trace"; "off" ] ->
          Db.set_tracing db false;
          P.Message { text = "trace: off" }
      | [ "trace"; "tree" ] -> P.Message { text = Db.trace_tree db }
      | [ "trace"; "json" ] -> P.Message { text = Db.trace_json db }
      | [ "timeout"; "off" ] ->
          Session.set_stmt_timeout_ms session None;
          P.Message { text = "timeout: off" }
      | [ "timeout"; ms ] -> (
          match float_of_string_opt ms with
          | Some v when v >= 0. ->
              Session.set_stmt_timeout_ms session (Some v);
              P.Message { text = Printf.sprintf "timeout: %gms" v }
          | _ ->
              P.Error_resp
                {
                  code = P.E_proto;
                  message =
                    Printf.sprintf "bad timeout %S (milliseconds or off)" ms;
                })
      | [ "exec"; mode ] -> (
          match Context.exec_mode_of_string mode with
          | Some m ->
              Session.set_exec_mode session (Some m);
              P.Message { text = "exec mode: " ^ Context.exec_mode_name m }
          | None ->
              P.Error_resp
                {
                  code = P.E_proto;
                  message =
                    Printf.sprintf
                      "unknown exec mode %S (naive|tuple|batch)" mode;
                })
      | _ ->
          P.Error_resp
            {
              code = P.E_proto;
              message = Printf.sprintf "unknown control op %S" other;
            })

(* ---------------------------------------------------------- connection *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let register_conn t conn =
  Mutex.protect t.mu (fun () ->
      t.next_conn <- t.next_conn + 1;
      Hashtbl.replace t.conns t.next_conn conn;
      t.next_conn)

let unregister_conn t id = Mutex.protect t.mu (fun () -> Hashtbl.remove t.conns id)

let request_loop t conn session =
  let fd = conn.c_fd in
  let stats = t.counters in
  let obs = Engine.obs t.engine in
  let span =
    Printf.sprintf "session#%d(%s).request" (Session.id session)
      (Session.user session)
  in
  let continue = ref true in
  while !continue do
    match P.recv_request ~stats fd with
    | None -> continue := false
    | Some req ->
        conn.c_busy <- true;
        Fun.protect
          ~finally:(fun () -> conn.c_busy <- false)
          (fun () ->
            let resp =
              Obs.timed obs obs.Obs.req_hist span (fun () ->
                  match req with
                  | P.Hello _ ->
                      P.Error_resp
                        { code = P.E_proto; message = "session already open" }
                  | P.Query { sql; timeout_ms; trace_id } ->
                      handle_query session
                        ?timeout_ms:(Option.map float_of_int timeout_ms)
                        ~trace_id sql
                  | P.Control { name } -> handle_control t session name)
            in
            P.send_response ~stats fd resp)
  done

let handle_conn t conn =
  let fd = conn.c_fd in
  let id = register_conn t conn in
  let stats = t.counters in
  (* arm the idle reaper: a blocked [read] returns EAGAIN after the
     timeout, which the catch-all below treats as a dead peer — the
     session's [Fun.protect] close rolls back any open transaction *)
  (match t.idle_timeout_s with
  | Some s -> (
      try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
      with Unix.Unix_error _ -> ())
  | None -> ());
  (try
     match P.recv_request ~stats fd with
     | None -> ()
     | Some (P.Hello { user }) -> (
         match Session.create t.engine ~user with
         | Ok session ->
             P.send_response ~stats fd
               (P.Hello_ok
                  { session = Session.id session; proto = P.proto_version });
             Fun.protect
               ~finally:(fun () -> Session.close session)
               (fun () -> request_loop t conn session)
         | Error e ->
             P.send_response ~stats fd
               (P.Error_resp
                  { code = P.E_auth; message = Engine.error_message e }))
     | Some _ ->
         P.send_response ~stats fd
           (P.Error_resp
              { code = P.E_proto; message = "expected Hello first" })
   with
  | P.Protocol_error _ | Unix.Unix_error _ | End_of_file -> ());
  unregister_conn t id;
  close_quiet fd

(* ----------------------------------------------------------- listeners *)

let accept_loop t lfd =
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | fd, _addr ->
        let conn = { c_fd = fd; c_busy = false } in
        let th = Thread.create (fun () -> handle_conn t conn) () in
        Mutex.protect t.mu (fun () -> t.threads <- th :: t.threads)
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      ->
        continue := not t.stopping
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let add_listener t lfd ~unix_path =
  Mutex.protect t.mu (fun () ->
      t.listeners <- (lfd, unix_path) :: t.listeners);
  let th = Thread.create (fun () -> accept_loop t lfd) () in
  Mutex.protect t.mu (fun () -> t.threads <- th :: t.threads)

let listen_unix t path =
  (if Sys.file_exists path then
     try Unix.unlink path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  add_listener t lfd ~unix_path:(Some path)

let listen_tcp t ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (addr, port));
  Unix.listen lfd 64;
  add_listener t lfd ~unix_path:None

let bound_port t =
  match
    List.find_map
      (fun (fd, _) ->
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> Some port
        | _ -> None)
      t.listeners
  with
  | Some port -> port
  | None -> invalid_arg "Server.bound_port: no TCP listener"

(* Stop accepting: shutdown wakes a thread blocked in [accept]; close
   alone does not on Linux. *)
let close_listeners t =
  let listeners =
    Mutex.protect t.mu (fun () ->
        let ls = t.listeners in
        t.listeners <- [];
        ls)
  in
  List.iter
    (fun (fd, path) ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      close_quiet fd;
      match path with
      | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | None -> ())
    listeners

(* Graceful shutdown: stop accepting, give in-flight requests up to
   [grace_s] to finish (their commits land or abort normally), then cut
   every remaining connection — each handler thread's [Fun.protect]
   closes its session, rolling back any open transaction — and join all
   threads.  [stop] is the impatient special case. *)
let drain ?(grace_s = 5.0) t =
  t.stopping <- true;
  close_listeners t;
  let any_busy () =
    Mutex.protect t.mu (fun () ->
        Hashtbl.fold (fun _ c acc -> acc || c.c_busy) t.conns false)
  in
  let deadline = Unix.gettimeofday () +. grace_s in
  while any_busy () && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  let conns, threads =
    Mutex.protect t.mu (fun () ->
        let ths = t.threads in
        let cs = Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) t.conns [] in
        t.threads <- [];
        Hashtbl.reset t.conns;
        (cs, ths))
  in
  List.iter
    (fun fd ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      close_quiet fd)
    conns;
  List.iter Thread.join threads

let stop t = drain ~grace_s:0. t

let engine t = t.engine

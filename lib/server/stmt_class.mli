(** Statement classification for snapshot-isolated transactions.

    The conflict detector works at table granularity: a transaction's
    write set is the tables its buffered statements mutate, and
    first-writer-wins compares that against the tables later commits
    touched after this transaction's snapshot horizon.  Because a
    committed transaction is {e replayed} against the canonical engine,
    a write statement's {e read} tables matter too — if another commit
    changed a table the statement reads, the replay could compute
    different effects than the snapshot execution did, so those reads
    are part of the conflict footprint.

    Schema and metadata statements (DDL, grants, approval control,
    dependencies, indexes) get the wildcard footprint [ddl = true]:
    they conflict with any concurrent write. *)

type t = {
  reads : string list;  (** user tables read (lowercased, deduplicated) *)
  writes : string list;  (** user tables mutated *)
  ddl : bool;  (** touches shared metadata: conflicts with everything *)
}

val classify : Bdbms_asql.Ast.statement -> t

val is_write : t -> bool
(** Whether the statement must be buffered and replayed at commit
    (mutates tables or metadata), as opposed to running read-only
    against the snapshot. *)

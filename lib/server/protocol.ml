module Stats = Bdbms_storage.Stats

let max_frame = 16 * 1024 * 1024

(* Protocol 2 adds the traced Query frame (0x05) and the proto field in
   Hello_ok.  Old peers interoperate: a v1 client never sends 0x05, and
   a v1 server's 4-byte Hello_ok decodes as proto 1. *)
let proto_version = 2

type request =
  | Hello of { user : string }
  | Query of { sql : string; timeout_ms : int option; trace_id : int }
  | Control of { name : string }

type error_code =
  | E_internal
  | E_exec
  | E_conflict
  | E_busy
  | E_auth
  | E_proto
  | E_timeout
  | E_degraded

(* [E_degraded] is retryable: degraded mode is transient by design (a
   health probe re-arms writes once I/O recovers).  [E_timeout] is not —
   retrying a statement that just blew its own deadline would blow it
   again; the client should raise the deadline instead. *)
let code_retryable = function
  | E_conflict | E_busy | E_degraded -> true
  | E_internal | E_exec | E_auth | E_proto | E_timeout -> false

let code_byte = function
  | E_internal -> 0
  | E_exec -> 1
  | E_conflict -> 2
  | E_busy -> 3
  | E_auth -> 4
  | E_proto -> 5
  | E_timeout -> 6
  | E_degraded -> 7

let code_of_byte = function
  | 0 -> Some E_internal
  | 1 -> Some E_exec
  | 2 -> Some E_conflict
  | 3 -> Some E_busy
  | 4 -> Some E_auth
  | 5 -> Some E_proto
  | 6 -> Some E_timeout
  | 7 -> Some E_degraded
  | _ -> None

type response =
  | Hello_ok of { session : int; proto : int }
  | Rows of { rendered : string }
  | Count of { affected : int; verb : string }
  | Message of { text : string }
  | Committed of { seq : int }
  | Error_resp of { code : error_code; message : string }

(* ------------------------------------------------------------ encoding *)

(* [frame tag payload_len fill] builds [u32 len | u8 tag | payload]
   where len = 1 + payload_len. *)
let frame tag payload_len fill =
  let b = Bytes.create (4 + 1 + payload_len) in
  Bytes.set_int32_be b 0 (Int32.of_int (1 + payload_len));
  Bytes.set_uint8 b 4 tag;
  fill b 5;
  b

let frame_str tag s =
  frame tag (String.length s) (fun b off ->
      Bytes.blit_string s 0 b off (String.length s))

let frame_u32 tag n =
  frame tag 4 (fun b off -> Bytes.set_int32_be b off (Int32.of_int n))

(* A query without a deadline or trace id keeps the original 0x02
   framing (old clients and servers interoperate); a deadline rides in
   the 0x04 frame as a u32 millisecond prefix; a trace id promotes the
   frame to 0x05 ([u64 trace_id | u32 timeout_ms | sql], with all-ones
   timeout meaning none), which only protocol-2 servers accept — the
   client checks the handshake before using it. *)
let no_timeout_u32 = 0xFFFFFFFF

let encode_request = function
  | Hello { user } -> frame_str 0x01 user
  | Query { sql; timeout_ms = None; trace_id = 0 } -> frame_str 0x02 sql
  | Query { sql; timeout_ms = Some ms; trace_id = 0 } ->
      frame 0x04
        (4 + String.length sql)
        (fun b off ->
          Bytes.set_int32_be b off (Int32.of_int ms);
          Bytes.blit_string sql 0 b (off + 4) (String.length sql))
  | Query { sql; timeout_ms; trace_id } ->
      let ms = Option.value timeout_ms ~default:no_timeout_u32 in
      frame 0x05
        (8 + 4 + String.length sql)
        (fun b off ->
          Bytes.set_int64_be b off (Int64.of_int trace_id);
          Bytes.set_int32_be b (off + 8) (Int32.of_int ms);
          Bytes.blit_string sql 0 b (off + 12) (String.length sql))
  | Control { name } -> frame_str 0x03 name

let encode_response = function
  | Hello_ok { session; proto } ->
      (* [u32 session | u32 proto]: a v1 client reads the first four
         bytes and ignores the rest, so the handshake stays compatible *)
      frame 0x81 8 (fun b off ->
          Bytes.set_int32_be b off (Int32.of_int session);
          Bytes.set_int32_be b (off + 4) (Int32.of_int proto))
  | Rows { rendered } -> frame_str 0x82 rendered
  | Count { affected; verb } ->
      frame 0x83
        (4 + String.length verb)
        (fun b off ->
          Bytes.set_int32_be b off (Int32.of_int affected);
          Bytes.blit_string verb 0 b (off + 4) (String.length verb))
  | Message { text } -> frame_str 0x84 text
  | Committed { seq } -> frame_u32 0x85 seq
  | Error_resp { code; message } ->
      frame 0xE0
        (1 + String.length message)
        (fun b off ->
          Bytes.set_uint8 b off (code_byte code);
          Bytes.blit_string message 0 b (off + 1) (String.length message))

(* ------------------------------------------------------------ decoding *)

type 'a decoded = Frame of 'a * int | Need_more | Invalid of string

(* Shared prefix handling: validate [u32 len] (1 <= len <= max_frame),
   then hand (tag, payload bytes) to the tag dispatcher once the whole
   frame is buffered. *)
let decode_frame buf dispatch =
  let have = Bytes.length buf in
  if have < 4 then Need_more
  else
    let len = Int32.to_int (Bytes.get_int32_be buf 0) in
    if len < 1 then Invalid (Printf.sprintf "frame length %d < 1" len)
    else if len > max_frame then
      Invalid (Printf.sprintf "frame length %d exceeds max %d" len max_frame)
    else if have < 4 + len then Need_more
    else
      let tag = Bytes.get_uint8 buf 4 in
      let payload = Bytes.sub_string buf 5 (len - 1) in
      match dispatch tag payload with
      | Some v -> Frame (v, 4 + len)
      | None -> Invalid (Printf.sprintf "unknown frame tag 0x%02X" tag)

let u32_payload payload k =
  if String.length payload < 4 then None
  else k (Int32.to_int (String.get_int32_be payload 0))

let decode_request buf =
  decode_frame buf (fun tag payload ->
      match tag with
      | 0x01 -> Some (Hello { user = payload })
      | 0x02 -> Some (Query { sql = payload; timeout_ms = None; trace_id = 0 })
      | 0x03 -> Some (Control { name = payload })
      | 0x04 ->
          u32_payload payload (fun ms ->
              if ms < 0 then None
              else
                Some
                  (Query
                     {
                       sql = String.sub payload 4 (String.length payload - 4);
                       timeout_ms = Some ms;
                       trace_id = 0;
                     }))
      | 0x05 ->
          if String.length payload < 12 then None
          else
            let trace_id = Int64.to_int (String.get_int64_be payload 0) in
            let ms =
              Int32.to_int (String.get_int32_be payload 8) land no_timeout_u32
            in
            let timeout_ms = if ms = no_timeout_u32 then None else Some ms in
            if trace_id < 0 then None
            else
              Some
                (Query
                   {
                     sql = String.sub payload 12 (String.length payload - 12);
                     timeout_ms;
                     trace_id;
                   })
      | _ -> None)

let decode_response buf =
  decode_frame buf (fun tag payload ->
      match tag with
      | 0x81 ->
          u32_payload payload (fun session ->
              let proto =
                if String.length payload >= 8 then
                  Int32.to_int (String.get_int32_be payload 4)
                else 1 (* v1 server: 4-byte payload *)
              in
              Some (Hello_ok { session; proto }))
      | 0x82 -> Some (Rows { rendered = payload })
      | 0x83 ->
          u32_payload payload (fun affected ->
              let verb =
                String.sub payload 4 (String.length payload - 4)
              in
              Some (Count { affected; verb }))
      | 0x84 -> Some (Message { text = payload })
      | 0x85 -> u32_payload payload (fun seq -> Some (Committed { seq }))
      | 0xE0 ->
          if String.length payload < 1 then None
          else
            Option.map
              (fun code ->
                Error_resp
                  {
                    code;
                    message =
                      String.sub payload 1 (String.length payload - 1);
                  })
              (code_of_byte (Char.code payload.[0]))
      | _ -> None)

(* ---------------------------------------------------------- socket I/O *)

exception Protocol_error of string

let () =
  Printexc.register_printer (function
    | Protocol_error m -> Some (Printf.sprintf "Protocol_error(%s)" m)
    | _ -> None)

let write_all fd b =
  let len = Bytes.length b in
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write fd b !sent (len - !sent)
  done

(* Fill [b] exactly; [`Eof] only if the stream ends before the first
   byte (a clean close between frames). *)
let read_exact fd b =
  let len = Bytes.length b in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd b !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  if !got = len then `Ok
  else if !got = 0 then `Eof
  else `Truncated !got

let send ?stats fd b =
  write_all fd b;
  Option.iter Stats.record_frame_tx stats

let send_request ?stats fd r = send ?stats fd (encode_request r)
let send_response ?stats fd r = send ?stats fd (encode_response r)

let recv ?stats fd decode what =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr with
  | `Eof -> None
  | `Truncated n ->
      raise (Protocol_error (Printf.sprintf "truncated %s header (%d/4 bytes)" what n))
  | `Ok -> (
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 1 || len > max_frame then
        raise (Protocol_error (Printf.sprintf "bad %s frame length %d" what len));
      let body = Bytes.create len in
      match read_exact fd body with
      | `Eof | `Truncated _ ->
          raise (Protocol_error (Printf.sprintf "truncated %s frame" what))
      | `Ok -> (
          let whole = Bytes.create (4 + len) in
          Bytes.blit hdr 0 whole 0 4;
          Bytes.blit body 0 whole 4 len;
          match decode whole with
          | Frame (v, _) ->
              Option.iter Stats.record_frame_rx stats;
              Some v
          | Need_more -> raise (Protocol_error "internal: short decode")
          | Invalid m -> raise (Protocol_error m)))

let recv_request ?stats fd = recv ?stats fd decode_request "request"
let recv_response ?stats fd = recv ?stats fd decode_response "response"

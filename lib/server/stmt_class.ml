module Ast = Bdbms_asql.Ast

type t = {
  reads : string list;
  writes : string list;
  ddl : bool;
}

let norm = String.lowercase_ascii

let dedup names = List.sort_uniq compare (List.map norm names)

let rec query_tables (q : Ast.query) =
  match q with
  | Ast.Select s -> List.map (fun (f : Ast.from_item) -> f.Ast.table) s.Ast.from
  | Ast.Union (a, b) | Ast.Intersect (a, b) | Ast.Except (a, b) ->
      query_tables a @ query_tables b

let select_tables (s : Ast.select) = query_tables (Ast.Select s)

(* The tables an ADD ANNOTATION's ON clause reads and writes: a DML
   clause executes (annotating what it touched), a SELECT only reads. *)
let on_clause_tables (on : Ast.on_clause) =
  match on with
  | Ast.On_select s -> (select_tables s, [])
  | Ast.On_insert { table; _ }
  | Ast.On_update { table; _ }
  | Ast.On_delete { table; _ } ->
      ([ table ], [ table ])

let none = { reads = []; writes = []; ddl = false }
let ddl = { reads = []; writes = []; ddl = true }
let reads ts = { reads = dedup ts; writes = []; ddl = false }

let writes ?(reads = []) ts =
  { reads = dedup (reads @ ts); writes = dedup ts; ddl = false }

let classify (stmt : Ast.statement) =
  match stmt with
  | Ast.Query q | Ast.Explain q | Ast.Explain_analyze q ->
      reads (query_tables q)
  | Ast.Insert { table; _ } -> writes [ table ]
  | Ast.Update { table; _ } | Ast.Delete { table; _ } ->
      writes ~reads:[ table ] [ table ]
  | Ast.Validate_cell { table; _ } -> writes ~reads:[ table ] [ table ]
  | Ast.Add_annotation { targets; on; _ } ->
      let on_reads, on_writes = on_clause_tables on in
      writes ~reads:on_reads (List.map fst targets @ on_writes)
  | Ast.Archive_annotation { targets; on; _ }
  | Ast.Restore_annotation { targets; on; _ } ->
      writes ~reads:(select_tables on) (List.map fst targets)
  | Ast.Copy_from { table; _ } -> writes [ table ]
  | Ast.Copy_to { table; _ } -> reads [ table ]
  (* ANALYZE mutates shared planner state (the stats registry + durable
     catalog): one table conflicts like a write to it, ANALYZE-all like
     DDL. *)
  | Ast.Analyze_stats (Some table) -> writes ~reads:[ table ] [ table ]
  | Ast.Analyze_stats None -> ddl
  | Ast.Show_pending _ | Ast.Show_outdated _ | Ast.Show_dependencies
  | Ast.Show_provenance _ | Ast.Show_tables | Ast.Describe _ ->
      none
  (* everything that mutates shared metadata conflicts with everything *)
  | Ast.Create_table _ | Ast.Drop_table _ | Ast.Create_ann_table _
  | Ast.Drop_ann_table _ | Ast.Start_approval _ | Ast.Stop_approval _
  | Ast.Approve _ | Ast.Disapprove _ | Ast.Grant _ | Ast.Revoke _
  | Ast.Create_user _ | Ast.Create_group _ | Ast.Add_user_to_group _
  | Ast.Create_dependency _ | Ast.Link_dependency _ | Ast.Create_index _
  | Ast.Drop_index _ ->
      ddl

let is_write t = t.ddl || t.writes <> []

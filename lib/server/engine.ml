(* The concurrency engine: snapshot-isolated transactions with group
   commit over one shared durable [Db.t].

   Locking discipline (never reversed, so no deadlocks):

     engine lock (t.mu)  →  version-store lock  →  (nothing)
     queue lock (t.qmu)  — never held across either of the above

   The engine lock serializes every touch of the canonical engine: the
   autocommit path, batch replay at commit, and the committed-version
   fallback read that snapshot overlays use on a page-fault miss.  The
   invariant it buys: whenever the lock is free, every canonical pager
   frame holds committed content — each locked section ends in a commit
   (sealing the version store's pending pre-images into versions) or a
   rollback (discarding them).  A snapshot read that falls through the
   version store to the canonical page is therefore always reading
   committed bytes, and the version store answers for anything committed
   after the snapshot's horizon.

   Group commit: committing transactions enqueue; the first becomes the
   leader and drains the queue in batches, replaying each conflict-free
   transaction's buffered statements and sealing the whole batch with
   ONE [Db.commit] — one WAL fsync amortized over every transaction in
   the batch (the E15 bench measures exactly this). *)

module Db = Bdbms.Db
module Context = Bdbms_asql.Context
module Executor = Bdbms_asql.Executor
module Parser = Bdbms_asql.Parser
module Disk = Bdbms_storage.Disk
module Pager = Bdbms_storage.Pager
module Stats = Bdbms_storage.Stats
module Backend = Bdbms_storage.Backend
module Obs = Bdbms_obs.Obs
module Metrics = Bdbms_obs.Metrics
module Trace = Bdbms_obs.Trace
module Qlog = Bdbms_obs.Qlog
module Timer = Bdbms_util.Timer
module Cancel = Bdbms_util.Cancel

type error =
  | Sql of string
  | Conflict of string
  | Busy of string
  | Timeout of string
  | Degraded of string
  | Closed

(* [Degraded] is transient by design (a health probe re-arms writes once
   I/O recovers), so clients may retry.  [Timeout] is not: the statement
   blew its own deadline and was rolled back — retrying with the same
   deadline would blow it again. *)
let retryable = function
  | Conflict _ | Busy _ | Degraded _ -> true
  | Sql _ | Timeout _ | Closed -> false

let error_message = function
  | Sql m | Conflict m | Busy m | Timeout m | Degraded m -> m
  | Closed -> "engine is closed"

(* What a sealed commit wrote, for first-writer-wins checks against
   later-committing transactions whose horizon predates it.  [wildcard]
   (DDL) conflicts with any footprint. *)
let wildcard = "*"

type commit_entry = { ce_csn : int; ce_tables : string list }

type t = {
  db : Db.t;
  vs : Version_store.t;
  counters : Stats.t; (* server-side counters, surviving rollbacks *)
  mu : Mutex.t; (* the engine lock *)
  page_size : int;
  snapshot_pool : int;
  mutable recent : commit_entry list; (* newest first, pruned by horizon *)
  mutable commit_seq : int; (* global commit order (serial-oracle index) *)
  mutable closed : bool;
  (* group-commit queue *)
  qmu : Mutex.t;
  qcond : Condition.t;
  queue : request Queue.t;
  mutable committer_running : bool;
}

and txn = {
  tx_engine : t;
  tx_horizon : int;
  tx_ctx : Context.t;
  tx_user : string;
  mutable tx_stmts : string list; (* buffered write statements, reversed *)
  mutable tx_touched : string list; (* reads ∪ writes of the write stmts *)
  mutable tx_writes : string list;
  mutable tx_ddl : bool;
  mutable tx_failed : bool;
  mutable tx_done : bool;
}

and request = { rq_txn : txn; mutable rq_result : (int, error) result option }

let db t = t.db
let obs t = Db.obs t.db
let version_store t = t.vs
let counters t = t.counters
(* server counters joined onto the Prometheus text the obs registry
   renders, so `\metrics` over the wire shows them too *)
let metrics t =
  let s = Stats.snapshot t.counters in
  let counter name help v =
    Printf.sprintf "# HELP bdbms_%s %s\n# TYPE bdbms_%s counter\nbdbms_%s %d\n"
      name help name name v
  in
  Db.metrics t.db
  ^ counter "sessions_opened" "sessions accepted since start"
      s.Stats.sessions_opened
  ^ counter "commit_conflicts" "first-writer-wins commit aborts"
      s.Stats.commit_conflicts
  ^ counter "group_commits" "group-commit batches sealed" s.Stats.group_commits
  ^ counter "frames_rx" "protocol frames received" s.Stats.frames_rx
  ^ counter "frames_tx" "protocol frames sent" s.Stats.frames_tx
  ^
  (* batch-engine counters live in the canonical disk's stats *)
  let d = Db.io_stats t.db in
  counter "batches_decoded" "column batches decoded by the vectorized engine"
    d.Stats.batches_decoded
  ^ counter "batch_fallbacks"
      "vectorized queries that fell back to the tuple engine"
      d.Stats.batch_fallbacks

(* The canonical disk's stats reset when a rollback recreates the
   context, so the server counters live in their own group and are
   merged into the reported snapshot. *)
let stats t =
  let d = Db.io_stats t.db in
  let s = Stats.snapshot t.counters in
  {
    d with
    Stats.sessions_opened = s.Stats.sessions_opened;
    commit_conflicts = s.Stats.commit_conflicts;
    frames_rx = s.Stats.frames_rx;
    frames_tx = s.Stats.frames_tx;
    group_commits = s.Stats.group_commits;
  }

let create ?page_size ?pool_pages ?(snapshot_pool_pages = 128)
    ?(strict_acl = false) ?fault ~path () =
  let db = Db.create ?page_size ?pool_pages ?fault ~path () in
  Db.set_strict_acl db strict_acl;
  let vs = Version_store.create () in
  Db.set_on_first_dirty db (Some (fun id page -> Version_store.capture vs id page));
  {
    db;
    vs;
    counters = Stats.create ();
    mu = Mutex.create ();
    page_size = Disk.page_size (Db.context db).Context.disk;
    snapshot_pool = snapshot_pool_pages;
    recent = [];
    commit_seq = 0;
    closed = false;
    qmu = Mutex.create ();
    qcond = Condition.create ();
    queue = Queue.create ();
    committer_running = false;
  }

(* ------------------------------------------------------ snapshot reads *)

(* The content page [id] had at [horizon]: a retained version if any
   commit after the horizon overwrote it, else the canonical page (still
   current).  Takes the engine lock so the two-step lookup is atomic
   against a concurrent batch sealing — and so it never reads canonical
   frames mid-replay. *)
let read_committed t ~horizon id =
  Mutex.protect t.mu (fun () ->
      match Version_store.read t.vs ~horizon id with
      | Some page -> page
      | None -> Disk.read (Db.context t.db).Context.disk id)

(* ------------------------------------------------------ commit history *)

let dedup names = List.sort_uniq compare names

let footprint txn =
  if txn.tx_ddl then wildcard :: txn.tx_writes else txn.tx_writes

(* Does a commit that wrote [tables] invalidate a transaction whose
   conflict footprint is [touched]?  Wildcards on either side collide
   with anything. *)
let tables_conflict ~tables ~touched =
  List.exists
    (fun tbl -> tbl = wildcard || List.mem tbl touched)
    tables
  || (List.mem wildcard touched && tables <> [])

(* First conflicting table (for the error message), if any commit sealed
   after [horizon] wrote into the transaction's footprint. *)
let recent_conflict t ~horizon ~touched =
  List.find_map
    (fun e ->
      if e.ce_csn > horizon && tables_conflict ~tables:e.ce_tables ~touched
      then Some (List.hd e.ce_tables)
      else None)
    t.recent

let record_commit_locked t ~tables =
  let csn = Version_store.seal t.vs in
  if tables <> [] then
    t.recent <- { ce_csn = csn; ce_tables = dedup tables } :: t.recent;
  (* entries at or below every live horizon can never conflict again *)
  let floor = Version_store.min_horizon t.vs in
  t.recent <- List.filter (fun e -> e.ce_csn > floor) t.recent

let abort_cycle_locked t =
  Db.force_rollback t.db;
  Version_store.abort_cycle t.vs

(* --------------------------------------------------------- autocommit *)

let superuser = Context.superuser

(* An exhausted I/O retry budget anywhere under the engine lock: drop
   into read-only degraded mode (which re-bootstraps the canonical
   engine) and discard the version store's pending pre-images — the
   rollback already reinstalled the capture hook on the fresh disk. *)
let io_degraded_locked t ~op ~detail =
  Db.enter_degraded t.db (Printf.sprintf "%s: %s" op detail);
  Version_store.abort_cycle t.vs;
  Error
    (Degraded
       (Printf.sprintf "I/O failing (%s: %s); engine is read-only" op detail))

let note_timeout t reason =
  let o = Db.obs t.db in
  Metrics.inc o.Obs.stmts_timed_out_c;
  Error (Timeout ("statement aborted: " ^ reason))

(* Install a wire-supplied trace id (0 = none) as the ambient id for the
   duration of a statement, so every span and query-log entry it records
   links back to the client's request frame.  The ambient id is a single
   shared slot on the trace ring: exact under the engine lock (the
   autocommit path), best-effort for concurrently executing snapshot
   statements. *)
let with_tid t tid f =
  if tid = 0 then f ()
  else Trace.with_trace_id (Db.obs t.db).Obs.trace tid f

let execute t ?(user = superuser) ?(session = 0) ?exec_mode ?timeout_ms
    ?(trace_id = 0) sql =
  match Parser.parse sql with
  | Error e -> Error (Sql e)
  | Ok stmt ->
      let cls = Stmt_class.classify stmt in
      Mutex.protect t.mu (fun () ->
          if t.closed then Error Closed
          else begin
            if Db.degraded t.db <> None then Db.try_heal t.db;
            let saved = (Db.context t.db).Context.exec_mode in
            (match exec_mode with
            | Some m -> (Db.context t.db).Context.exec_mode <- m
            | None -> ());
            Fun.protect
              ~finally:(fun () ->
                (* a rollback recreates the context, so re-fetch it *)
                (Db.context t.db).Context.exec_mode <- saved)
              (fun () ->
                match
                  with_tid t trace_id (fun () ->
                      Db.exec_nocommit t.db ~user ~session ?timeout_ms sql)
                with
                | Ok outcome -> (
                    match Db.commit t.db with
                    | Ok () ->
                        t.commit_seq <- t.commit_seq + 1;
                        record_commit_locked t
                          ~tables:
                            (if cls.Stmt_class.ddl then [ wildcard ]
                             else cls.Stmt_class.writes);
                        Ok outcome
                    | Error e ->
                        abort_cycle_locked t;
                        Error (Sql e)
                    | exception Backend.Io_degraded { op; detail } ->
                        io_degraded_locked t ~op ~detail)
                | Error e ->
                    abort_cycle_locked t;
                    Error (Sql e)
                | exception Pager.Pool_exhausted _ ->
                    abort_cycle_locked t;
                    Error (Busy "buffer pool exhausted; retry")
                | exception Cancel.Cancelled reason ->
                    abort_cycle_locked t;
                    note_timeout t reason
                | exception Executor.Read_only reason ->
                    abort_cycle_locked t;
                    Error
                      (Degraded
                         (Printf.sprintf "engine is read-only (degraded: %s)"
                            reason))
                | exception Backend.Io_degraded { op; detail } ->
                    io_degraded_locked t ~op ~detail)
          end)

(* ------------------------------------------------------- transactions *)

let begin_txn t ?(user = superuser) () =
  let horizon, base_count, flags =
    Mutex.protect t.mu (fun () ->
        if t.closed then failwith "engine is closed";
        let ctx = Db.context t.db in
        let horizon = Version_store.csn t.vs in
        Version_store.retain t.vs ~horizon;
        ( horizon,
          Disk.page_count ctx.Context.disk,
          ( ctx.Context.strict_acl,
            ctx.Context.auto_provenance,
            ctx.Context.exec_mode,
            ctx.Context.batch_rows,
            ctx.Context.sys_providers ) ))
  in
  match
    let disk =
      Disk.overlay ~page_size:t.page_size ~pool_pages:t.snapshot_pool
        ~base_count
        ~base_read:(fun id -> read_committed t ~horizon id)
        ()
    in
    let ctx = Context.create ~disk ~obs:(Db.obs t.db) () in
    (* built-ins before bootstrap so persisted dependency chains rebind *)
    Db.register_builtin_procedures ctx;
    let (_ : int) = Context.bootstrap ctx in
    let sa, ap, em, br, sp = flags in
    ctx.Context.strict_acl <- sa;
    ctx.Context.auto_provenance <- ap;
    ctx.Context.exec_mode <- em;
    ctx.Context.batch_rows <- br;
    (* the live-session provider follows the snapshot, so [sys.sessions]
       works inside a transaction too *)
    ctx.Context.sys_providers <- sp;
    ctx.Context.session_label <- Some (Printf.sprintf "%s@%d" user horizon);
    ctx
  with
  | ctx ->
      {
        tx_engine = t;
        tx_horizon = horizon;
        tx_ctx = ctx;
        tx_user = user;
        tx_stmts = [];
        tx_touched = [];
        tx_writes = [];
        tx_ddl = false;
        tx_failed = false;
        tx_done = false;
      }
  | exception e ->
      Version_store.release t.vs ~horizon;
      raise e

let txn_user txn = txn.tx_user
let txn_active txn = not txn.tx_done

(* session `\exec` override: a transaction runs on its own snapshot
   context, so the mode is set there directly *)
let txn_set_exec_mode txn m = txn.tx_ctx.Context.exec_mode <- m

(* The overlay needs no teardown (ephemeral, not durable): dropping the
   context drops it; only the horizon retention must be returned. *)
let finish txn =
  if not txn.tx_done then begin
    txn.tx_done <- true;
    Version_store.release txn.tx_engine.vs ~horizon:txn.tx_horizon
  end

let rollback_txn txn = finish txn

let rec txn_exec txn ?(session = 0) ?timeout_ms ?(trace_id = 0) sql =
  let t = txn.tx_engine in
  if txn.tx_done then Error (Sql "no transaction in progress")
  else if txn.tx_failed then
    Error (Sql "current transaction is aborted; ROLLBACK and retry")
  else
    match Parser.parse sql with
    | Error e ->
        txn.tx_failed <- true;
        Error (Sql e)
    | Ok stmt -> (
        let cls = Stmt_class.classify stmt in
        if Stmt_class.is_write cls && Db.degraded t.db <> None then begin
          (* fail fast instead of buffering a write that commit replay
             would refuse anyway (the canonical engine is read-only) *)
          Db.try_heal t.db;
          if Db.degraded t.db <> None then begin
            txn.tx_failed <- true;
            Error
              (Degraded "engine is read-only (degraded); ROLLBACK and retry")
          end
          else txn_exec_stmt txn cls ~session ?timeout_ms ~trace_id sql stmt
        end
        else txn_exec_stmt txn cls ~session ?timeout_ms ~trace_id sql stmt)

and txn_exec_stmt txn cls ~session ?timeout_ms ~trace_id sql stmt =
  let t = txn.tx_engine in
  let o = Db.obs t.db in
  let run () =
    with_tid t trace_id (fun () ->
        Obs.timed o o.Obs.stmt_hist "txn.stmt" (fun () ->
            Context.with_deadline txn.tx_ctx ?timeout_ms (fun () ->
                Executor.execute txn.tx_ctx ~user:txn.tx_user stmt)))
  in
  match Timer.timed run with
  | result, elapsed -> (
      (* transaction statements bypass [Db.exec]'s recording, so the
         query log is fed here, carrying the wire session and trace id *)
      let ok, rows =
        match result with
        | Ok (Executor.Rows rs) ->
            (true, List.length rs.Bdbms_annotation.Propagate.rows)
        | Ok (Executor.Count { affected; _ }) -> (true, affected)
        | Ok _ -> (true, -1)
        | Error _ -> (false, -1)
      in
      let slow =
        match Db.slow_ms t.db with
        | Some threshold -> Timer.ns_to_ms elapsed >= threshold
        | None -> false
      in
      Qlog.record o.Obs.qlog ~sql ~user:txn.tx_user ~session ~dur_ns:elapsed
        ~rows ~trace_id ~ok ~slow;
      match result with
      | Ok outcome ->
          if Stmt_class.is_write cls then begin
            txn.tx_stmts <- sql :: txn.tx_stmts;
            txn.tx_touched <-
              dedup
                (cls.Stmt_class.reads @ cls.Stmt_class.writes @ txn.tx_touched);
            txn.tx_writes <- dedup (cls.Stmt_class.writes @ txn.tx_writes);
            if cls.Stmt_class.ddl then txn.tx_ddl <- true
          end;
          Ok outcome
      | Error e ->
          txn.tx_failed <- true;
          Error (Sql e))
  | exception Pager.Pool_exhausted _ ->
      txn.tx_failed <- true;
      Error (Busy "snapshot buffer pool exhausted; ROLLBACK and retry")
  | exception Cancel.Cancelled reason ->
      txn.tx_failed <- true;
      note_timeout t reason

(* ------------------------------------------------------- group commit *)

exception Restart_batch

(* Replay one transaction's buffered statements onto the canonical
   engine.  A failure poisons the whole uncommitted cycle (prior
   transactions of this batch included), so the caller rolls everything
   back and restarts the batch without the offender. *)
let replay_txn t txn =
  let rec go = function
    | [] -> Ok ()
    | sql :: rest -> (
        match Db.exec_nocommit t.db ~user:txn.tx_user sql with
        | Ok _ -> go rest
        | Error e -> Error (Sql e)
        | exception Pager.Pool_exhausted _ ->
            Error (Busy "buffer pool exhausted during commit replay; retry")
        | exception Cancel.Cancelled reason -> note_timeout t reason
        | exception Executor.Read_only reason ->
            Error
              (Degraded
                 (Printf.sprintf "engine is read-only (degraded: %s)" reason))
        | exception Backend.Io_degraded { op; detail } ->
            io_degraded_locked t ~op ~detail)
  in
  go (List.rev txn.tx_stmts)

(* Process one drained batch under the engine lock.  Each request is
   conflict-checked against (a) commits sealed after its horizon and (b)
   writes already replayed earlier in this batch, then replayed.  All
   survivors share ONE [Db.commit] — the group commit — and are assigned
   consecutive positions in the global commit order. *)
let process_batch t reqs =
  Mutex.protect t.mu (fun () ->
      if t.closed then
        List.iter (fun rq -> rq.rq_result <- Some (Error Closed)) reqs
      else begin
        if Db.degraded t.db <> None then Db.try_heal t.db;
        let rec attempt () =
          let replayed = ref [] in
          let batch_tables = ref [] in
          (try
             List.iter
               (fun rq ->
                 if rq.rq_result = None then begin
                   let txn = rq.rq_txn in
                   let conflict =
                     match
                       recent_conflict t ~horizon:txn.tx_horizon
                         ~touched:
                           (if txn.tx_ddl then wildcard :: txn.tx_touched
                            else txn.tx_touched)
                     with
                     | Some tbl -> Some tbl
                     | None ->
                         if
                           tables_conflict ~tables:!batch_tables
                             ~touched:
                               (if txn.tx_ddl then
                                  wildcard :: txn.tx_touched
                                else txn.tx_touched)
                         then Some (List.hd !batch_tables)
                         else None
                   in
                   match conflict with
                   | Some tbl ->
                       Stats.record_commit_conflict t.counters;
                       rq.rq_result <-
                         Some
                           (Error
                              (Conflict
                                 (Printf.sprintf
                                    "serialization conflict on table %s: \
                                     concurrent transaction committed \
                                     first"
                                    tbl)))
                   | None -> (
                       match replay_txn t txn with
                       | Ok () ->
                           replayed := rq :: !replayed;
                           batch_tables :=
                             dedup (footprint txn @ !batch_tables)
                       | Error e ->
                           (* poison: discard the whole uncommitted cycle
                              and redo the batch without this request *)
                           abort_cycle_locked t;
                           rq.rq_result <- Some (Error e);
                           raise Restart_batch)
                 end)
               reqs;
             if !replayed <> [] then begin
               match Db.commit t.db with
               | Ok () ->
                   Stats.record_group_commit t.counters;
                   record_commit_locked t ~tables:!batch_tables;
                   List.iter
                     (fun rq ->
                       t.commit_seq <- t.commit_seq + 1;
                       rq.rq_result <- Some (Ok t.commit_seq))
                     (List.rev !replayed)
               | Error e ->
                   abort_cycle_locked t;
                   List.iter
                     (fun rq ->
                       if rq.rq_result = None then
                         rq.rq_result <- Some (Error (Sql e)))
                     reqs
               | exception Backend.Io_degraded { op; detail } ->
                   let e = io_degraded_locked t ~op ~detail in
                   List.iter
                     (fun rq ->
                       if rq.rq_result = None then rq.rq_result <- Some e)
                     reqs
             end
           with Restart_batch -> attempt ())
        in
        attempt ()
      end)

let drain_queue t =
  let batch = ref [] in
  while not (Queue.is_empty t.queue) do
    batch := Queue.pop t.queue :: !batch
  done;
  List.rev !batch

let commit_txn txn =
  let t = txn.tx_engine in
  if txn.tx_done then Error (Sql "no transaction in progress")
  else if txn.tx_failed then begin
    finish txn;
    Error (Sql "aborted transaction rolled back (commit refused)")
  end
  else if txn.tx_stmts = [] then begin
    (* read-only: the snapshot was consistent by construction *)
    finish txn;
    Ok 0
  end
  else begin
    let rq = { rq_txn = txn; rq_result = None } in
    Mutex.lock t.qmu;
    Queue.push rq t.queue;
    if t.committer_running then begin
      (* a leader is already draining; it will resolve us *)
      while rq.rq_result = None do
        Condition.wait t.qcond t.qmu
      done;
      Mutex.unlock t.qmu
    end
    else begin
      (* become the leader: drain batches until the queue stays empty *)
      t.committer_running <- true;
      while not (Queue.is_empty t.queue) do
        (* batching window: when other transactions are live they may be
           racing toward their own commit call — pause briefly so they
           can enqueue and share this WAL flush.  A solo committer (no
           other live horizon) skips the window and pays nothing. *)
        if Version_store.live_horizons t.vs > 1 then begin
          Mutex.unlock t.qmu;
          Thread.delay 0.0002;
          Mutex.lock t.qmu
        end;
        let batch = drain_queue t in
        Mutex.unlock t.qmu;
        (try process_batch t batch
         with e ->
           let msg = "commit failed: " ^ Printexc.to_string e in
           List.iter
             (fun r ->
               if r.rq_result = None then r.rq_result <- Some (Error (Sql msg)))
             batch);
        Mutex.lock t.qmu;
        Condition.broadcast t.qcond
      done;
      t.committer_running <- false;
      Mutex.unlock t.qmu
    end;
    finish txn;
    match rq.rq_result with
    | Some r -> r
    | None -> Error (Sql "commit was not processed")
  end

let close t =
  Mutex.protect t.mu (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Db.close t.db
      end)

(* Blocking protocol client: one socket, one session.  Shared by the
   CLI's [--connect] remote REPL, the concurrency integration tests, and
   the fuzz harness. *)

module P = Protocol

type t = {
  fd : Unix.file_descr;
  mutable closed : bool;
  mutable proto : int;
      (* server's protocol version, learned from the Hello_ok handshake;
         1 (no trace ids) until the handshake answers otherwise *)
  mutable tid_counter : int;
  mutable last_trace_id : int;
}

(* Client-stamped trace ids: pid-salted so concurrent clients against
   one server do not collide, sequential within a connection so a test
   or log reader can follow one client's statements in order. *)
let next_trace_id t =
  t.tid_counter <- t.tid_counter + 1;
  ((Unix.getpid () land 0x3FFFFF) lsl 32) lor (t.tid_counter land 0xFFFFFFFF)

(* A server that dropped the connection must surface as EPIPE on our
   next write, not kill the process. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let connect_unix path =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd; closed = false; proto = 1; tid_counter = 0; last_trace_id = 0 }

let connect_tcp ~host ~port =
  ignore_sigpipe ();
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd; closed = false; proto = 1; tid_counter = 0; last_trace_id = 0 }

let request t req =
  if t.closed then raise (P.Protocol_error "client is closed");
  P.send_request t.fd req;
  match P.recv_response t.fd with
  | Some resp -> resp
  | None -> raise (P.Protocol_error "server closed the connection")

let hello t ~user =
  match request t (P.Hello { user }) with
  | P.Hello_ok { session; proto } ->
      t.proto <- proto;
      Ok session
  | P.Error_resp { message; _ } -> Error message
  | _ -> Error "unexpected response to Hello"

let proto t = t.proto
let last_trace_id t = t.last_trace_id

(* Stamp a trace id on every query once the handshake confirmed a
   protocol-2 server; a v1 server keeps getting the legacy frames. *)
let fresh_tid t =
  let tid = if t.proto >= 2 then next_trace_id t else 0 in
  t.last_trace_id <- tid;
  tid

let query t ?timeout_ms sql =
  request t (P.Query { sql; timeout_ms; trace_id = fresh_tid t })

let control t name = request t (P.Control { name })

(* Client-side auto-retry: resend on a retryable error frame (Busy,
   Conflict, Degraded) with jittered exponential backoff.  Only safe
   outside an explicit transaction — there a conflict aborts the whole
   transaction, and the *transaction*, not the statement, must restart —
   so the CLI only routes autocommit statements here. *)
let query_retry t ?timeout_ms ?(policy = Bdbms_util.Backoff.default)
    ?on_retry sql =
  let retries = ref 0 in
  (* one logical statement: every resend carries the same trace id *)
  let trace_id = fresh_tid t in
  let rec go attempt =
    match request t (P.Query { sql; timeout_ms; trace_id }) with
    | P.Error_resp { code; _ }
      when P.code_retryable code && attempt < policy.Bdbms_util.Backoff.max_attempts
      ->
        incr retries;
        let d = Bdbms_util.Backoff.delay_ms policy ~attempt in
        (match on_retry with
        | Some f -> f ~attempt ~delay_ms:d
        | None -> ());
        Unix.sleepf (d /. 1000.);
        go (attempt + 1)
    | resp -> (resp, !retries)
  in
  go 1

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

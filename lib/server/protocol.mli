(** The length-prefixed binary wire protocol.

    Every frame is:

    {v
      +----------------+--------+------------------------+
      | u32 big-endian |  u8    |  length-1 bytes        |
      |    length      |  tag   |  payload               |
      +----------------+--------+------------------------+
    v}

    where [length] counts the tag byte plus the payload (so it is always
    ≥ 1) and is capped at {!max_frame} — an oversized or zero-length
    prefix is a protocol error, not an allocation.  See DESIGN.md §10
    for the full frame catalogue. *)

val max_frame : int
(** Maximum [length] value accepted (16 MiB). *)

val proto_version : int
(** The protocol this peer speaks (2).  Version 2 adds the traced Query
    frame ([0x05]) and the proto field appended to [Hello_ok]; both
    degrade gracefully against version-1 peers. *)

type request =
  | Hello of { user : string }  (** tag [0x01]: open a session *)
  | Query of { sql : string; timeout_ms : int option; trace_id : int }
      (** tag [0x02] without a deadline or trace id (wire-compatible
          with older peers); tag [0x04] ([u32 timeout_ms | sql]) with a
          deadline only; tag [0x05]
          ([u64 trace_id | u32 timeout_ms | sql], all-ones timeout =
          none) when the client stamps a trace id — send it only after a
          proto ≥ 2 handshake.  The server aborts and rolls back a
          statement that outlives its deadline, answering {!E_timeout}. *)
  | Control of { name : string }
      (** tag [0x03]: out-of-band op: [ping], [metrics], [stats],
          [exec [mode]], [timeout [ms|off]], [trace on|off|tree|json] *)

type error_code =
  | E_internal
  | E_exec  (** parse/execution/authorization error *)
  | E_conflict  (** snapshot conflict: retry the transaction *)
  | E_busy  (** transient resource exhaustion: retry *)
  | E_auth
  | E_proto
  | E_timeout  (** statement deadline expired; rolled back, not retryable *)
  | E_degraded
      (** engine is in read-only degraded mode; writes retryable later *)

val code_retryable : error_code -> bool

type response =
  | Hello_ok of { session : int; proto : int }
      (** tag [0x81]: [u32 session | u32 proto]; a 4-byte payload from a
          v1 server decodes as proto 1 *)
  | Rows of { rendered : string }  (** tag [0x82]: server-rendered table *)
  | Count of { affected : int; verb : string }  (** tag [0x83] *)
  | Message of { text : string }  (** tag [0x84] *)
  | Committed of { seq : int }
      (** tag [0x85]: global commit-order position *)
  | Error_resp of { code : error_code; message : string }  (** tag [0xE0] *)

(** {1 Pure codec} — exercised by the property tests. *)

val encode_request : request -> Bytes.t
val encode_response : response -> Bytes.t

type 'a decoded =
  | Frame of 'a * int  (** the value and the bytes consumed *)
  | Need_more  (** the buffer holds a valid but incomplete frame *)
  | Invalid of string  (** malformed: bad tag, bad length, short payload *)

val decode_request : Bytes.t -> request decoded
val decode_response : Bytes.t -> response decoded

(** {1 Blocking frame I/O} over a connected socket.  [stats], when
    given, counts frames into [frames_rx]/[frames_tx]. *)

exception Protocol_error of string

val send_request :
  ?stats:Bdbms_storage.Stats.t -> Unix.file_descr -> request -> unit

val send_response :
  ?stats:Bdbms_storage.Stats.t -> Unix.file_descr -> response -> unit

val recv_request :
  ?stats:Bdbms_storage.Stats.t -> Unix.file_descr -> request option
(** [None] on a clean EOF at a frame boundary.
    @raise Protocol_error on a malformed or truncated frame. *)

val recv_response :
  ?stats:Bdbms_storage.Stats.t -> Unix.file_descr -> response option

(** Copy-on-write page version store: the substrate of snapshot
    isolation.

    The canonical pager announces every clean→dirty frame transition
    (see {!Bdbms_storage.Pager.set_on_first_dirty}); the store captures
    those pre-images — the page's {e committed} content — as pending.
    When the engine commits, {!seal} advances the commit sequence number
    (CSN) and files each pending image as "this was the content before
    commit [csn]".  A transaction whose snapshot horizon is [h] then
    reads page [p] as: the version chain entry with the smallest
    [end_csn > h] if any (the content [p] had at time [h]), else the
    canonical page (unchanged since [h]).

    Entries are pruned as soon as no live snapshot's horizon can reach
    them, so the store's footprint is bounded by write traffic times
    snapshot lifetime, not by database size.

    The store has its own lock, but {!capture}, {!seal}, {!abort_cycle},
    and {!read} are called with the engine's big lock held — the engine
    lock is what makes "pending becomes a version atomically with the
    commit" true. *)

type t

val create : unit -> t

val csn : t -> int
(** The current commit sequence number — a new snapshot's horizon. *)

val capture : t -> Bdbms_storage.Page.id -> Bdbms_storage.Page.t -> unit
(** Record a committed pre-image (copied) for the current write cycle.
    Idempotent per page per cycle: eviction + re-dirty within one cycle
    announces again with a now-uncommitted image, which is ignored. *)

val abort_cycle : t -> unit
(** Discard pending pre-images: the write cycle rolled back, canonical
    pages revert to their committed content, so no versions are born. *)

val seal : t -> int
(** Commit the write cycle: advance the CSN, file every pending
    pre-image as ending at the new CSN, prune entries no live horizon
    can reach, and return the new CSN. *)

val read : t -> horizon:int -> Bdbms_storage.Page.id -> Bdbms_storage.Page.t option
(** The content the page had at [horizon]: the version with the smallest
    [end_csn > horizon], copied — or [None] if the canonical page is
    still current for that horizon. *)

val retain : t -> horizon:int -> unit
(** Declare a live snapshot at [horizon], blocking pruning past it. *)

val release : t -> horizon:int -> unit
(** Drop one retention of [horizon] (refcounted). *)

val min_horizon : t -> int
(** The lowest retained horizon, or [max_int] with no live snapshots —
    the pruning floor for commit-history entries. *)

val live_horizons : t -> int
(** Retained snapshot count (for tests and the sessions gauge). *)

val chain_pages : t -> int
(** Pages that currently hold at least one retained version (for
    bounded-footprint assertions in tests). *)

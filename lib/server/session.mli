(** Per-connection session state over a shared {!Engine.t}.

    A session carries an authenticated user, at most one open
    transaction, and its conflict bookkeeping.  Many sessions share one
    engine; their statements interleave freely — reads run against
    snapshots, writes group-commit.

    The session layer is also where transaction-control statements
    ([BEGIN] / [COMMIT] / [ROLLBACK]) are intercepted: they are session
    state changes, not engine statements. *)

type t

type reply =
  | Outcome of Bdbms_asql.Executor.outcome
  | Began
  | Committed of int
      (** position in the global commit order (0 = read-only) *)
  | Rolled_back

val create : Engine.t -> user:string -> (t, Engine.error) result
(** Authenticate [user] (must exist in the shared engine's principal
    store, or be the superuser) and open a session.  Bumps the
    [sessions_opened] counter and the sessions-in-flight gauge. *)

val id : t -> int
val user : t -> string
val in_txn : t -> bool

val sys_rows : Engine.t -> Bdbms_relation.Tuple.t list
(** Live rows for the [sys.sessions] virtual table: one per open session
    on this engine (id, user, idle/txn state, in-flight statement,
    conflict streak), in id order.  The server installs
    [fun () -> sys_rows engine] as the ["sys.sessions"] provider on the
    canonical context. *)

val set_exec_mode : t -> Bdbms_asql.Context.exec_mode option -> unit
(** Install (or with [None] clear) the session's SELECT-engine override
    (the [\exec] control op).  Applies to subsequent autocommit
    statements, to transactions this session begins, and immediately to
    an already-open transaction. *)

val exec_mode : t -> Bdbms_asql.Context.exec_mode
(** The engine the session's next statement will run under (the
    override, or the shared engine's default). *)

val set_stmt_timeout_ms : t -> float option -> unit
(** Install (or with [None] clear) the session's default statement
    deadline (the [\timeout] control op).  A query frame carrying its
    own deadline overrides it for that statement.
    @raise Invalid_argument when negative. *)

val stmt_timeout_ms : t -> float option

val execute :
  t -> ?timeout_ms:float -> ?trace_id:int -> string -> (reply, Engine.error) result
(** Run one statement: [BEGIN]/[COMMIT]/[ROLLBACK] (and their synonyms)
    drive the session's transaction; anything else executes inside the
    open transaction, or autocommits on the engine when none is open.
    [timeout_ms] (from the query frame) overrides the session's default
    deadline for this statement.  [trace_id] (from a protocol-2 query
    frame; 0 = none) tags the statement's trace spans and query-log
    entry so a wire request can be followed through the engine.
    Transient errors ([Busy], [Conflict], [Degraded]) and deadline
    expiries ([Timeout]) fail the statement (and abort an open
    transaction) but never the session. *)

val close : t -> unit
(** Roll back any open transaction and release the session (drops the
    sessions gauge).  Idempotent. *)

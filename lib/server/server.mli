(** The network front end: Unix-domain and TCP listeners serving the
    wire protocol, one thread per connection, all sessions sharing one
    {!Engine.t}.

    Request failures of any kind become error {e frames} (with a
    retryable code where appropriate) — a client error can never kill
    the accept loop or another session. *)

type t

val create : Engine.t -> t

val listen_unix : t -> string -> unit
(** Bind and serve a Unix-domain socket at the path (an existing socket
    file is replaced); the accept thread starts immediately. *)

val listen_tcp : t -> host:string -> port:int -> unit
(** Bind and serve [host:port] ([SO_REUSEADDR]; port 0 picks a free
    port — see {!bound_port}). *)

val bound_port : t -> int
(** The actual port of the first TCP listener (for port-0 binds).
    @raise Invalid_argument with no TCP listener. *)

val stop : t -> unit
(** Close listeners (unlinking Unix socket paths), shut down every live
    connection, and join all server threads.  Does not close the
    engine. *)

val engine : t -> Engine.t

(** The network front end: Unix-domain and TCP listeners serving the
    wire protocol, one thread per connection, all sessions sharing one
    {!Engine.t}.

    Request failures of any kind become error {e frames} (with a
    retryable code where appropriate) — a client error can never kill
    the accept loop or another session. *)

type t

val create : ?idle_timeout_s:float -> Engine.t -> t
(** [idle_timeout_s] arms a per-connection receive timeout
    ([SO_RCVTIMEO]): a peer silent that long — between frames or stalled
    mid-frame (slow loris) — is reaped, its session closed and any open
    transaction rolled back.  Omit for no timeout.
    @raise Invalid_argument when not positive. *)

val listen_unix : t -> string -> unit
(** Bind and serve a Unix-domain socket at the path (an existing socket
    file is replaced); the accept thread starts immediately. *)

val listen_tcp : t -> host:string -> port:int -> unit
(** Bind and serve [host:port] ([SO_REUSEADDR]; port 0 picks a free
    port — see {!bound_port}). *)

val bound_port : t -> int
(** The actual port of the first TCP listener (for port-0 binds).
    @raise Invalid_argument with no TCP listener. *)

val drain : ?grace_s:float -> t -> unit
(** Graceful shutdown: stop accepting new connections (unlinking Unix
    socket paths), wait up to [grace_s] seconds (default 5) for in-flight
    requests to finish, then shut down every remaining connection
    (rolling back their open transactions) and join all server threads.
    Does not close the engine — the caller checkpoints and closes it,
    releasing the file lock. *)

val stop : t -> unit
(** [drain ~grace_s:0.]: immediate shutdown. *)

val engine : t -> Engine.t

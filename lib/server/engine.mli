(** The concurrency engine: one shared durable {!Bdbms.Db.t} behind
    snapshot-isolated transactions with group commit.

    Sessions run transactions against private snapshots (a
    copy-on-write {!Bdbms_storage.Disk.overlay} whose base reads come
    from the {!Version_store} at the transaction's horizon), so readers
    never block behind writers and never observe a partial transaction.
    Write statements execute against the snapshot (read-your-own-writes)
    {e and} are buffered; at commit they are replayed onto the canonical
    engine by a single committer that drains all concurrently queued
    transactions and seals the batch with one WAL fsync — group commit.

    Conflicts are first-writer-wins at table granularity: if any commit
    sealed after this transaction's horizon wrote a table in this
    transaction's footprint (tables its write statements read or wrote;
    DDL is a wildcard), the commit fails with {!Conflict} and the client
    may retry on a fresh snapshot. *)

type t

type error =
  | Sql of string  (** parse/execution/authorization error — not retryable *)
  | Conflict of string  (** first-writer-wins abort — retry on a fresh snapshot *)
  | Busy of string  (** transient resource exhaustion (e.g. pager pool) — retryable *)
  | Timeout of string
      (** statement deadline expired; rolled back — not retryable (the
          same deadline would expire again) *)
  | Degraded of string
      (** engine is in read-only degraded mode after an exhausted I/O
          retry budget — retryable (a health probe re-arms writes once
          I/O recovers) *)
  | Closed  (** the engine is shut down *)

val retryable : error -> bool
val error_message : error -> string

val create :
  ?page_size:int ->
  ?pool_pages:int ->
  ?snapshot_pool_pages:int ->
  ?strict_acl:bool ->
  ?fault:Bdbms_storage.Fault.t ->
  path:string ->
  unit ->
  t
(** Open (or create) the database file at [path] and wrap it for
    concurrent use.  Always durable: snapshots bootstrap from the
    committed page-0 catalog and rollback re-bootstraps from disk, so a
    file path is required.  [snapshot_pool_pages] bounds each
    transaction overlay's frame table (default 128).
    @raise Bdbms_storage.Backend.Locked if another handle (this process
    or another) has the file open. *)

val db : t -> Bdbms.Db.t
(** The canonical engine.  Exposed for wiring (stats, metrics, obs);
    arbitrary concurrent [Db.exec] calls through it would bypass the
    engine lock — use {!execute}. *)

val obs : t -> Bdbms_obs.Obs.t

val counters : t -> Bdbms_storage.Stats.t
(** The engine-owned server counter group ([sessions_opened],
    [commit_conflicts], [frames_rx/tx], [group_commits]).  Kept separate
    from the canonical disk's counters, which reset when a rollback
    recreates the context. *)

val stats : t -> Bdbms_storage.Stats.snapshot
(** The canonical disk's I/O snapshot with the server counter group
    merged in. *)

val metrics : t -> string

val version_store : t -> Version_store.t

val execute :
  t ->
  ?user:string ->
  ?session:int ->
  ?exec_mode:Bdbms_asql.Context.exec_mode ->
  ?timeout_ms:float ->
  ?trace_id:int ->
  string ->
  (Bdbms_asql.Executor.outcome, error) result
(** Autocommit path: execute one statement on the canonical engine under
    the engine lock, commit (sealing a version-store cycle), and return.
    Never conflicts — it runs at the head of history.  [exec_mode]
    overrides the SELECT engine for this statement only (the session
    [\exec] setting); the canonical engine's mode is restored after.
    [timeout_ms] arms a cooperative deadline on the statement: on expiry
    it is rolled back and answered with {!Timeout}.  [session] (the
    wire session id) and [trace_id] (the client-stamped request id, 0 =
    none) flow into the statement's trace spans and query-log entry.
    When degraded, a health probe runs first; if still degraded, write
    statements are refused with {!Degraded}. *)

(** {1 Explicit transactions} *)

type txn

val begin_txn : t -> ?user:string -> unit -> txn
(** Take a snapshot: pin the current CSN as the horizon and build a
    private engine over a copy-on-write overlay. *)

val txn_exec :
  txn ->
  ?session:int ->
  ?timeout_ms:float ->
  ?trace_id:int ->
  string ->
  (Bdbms_asql.Executor.outcome, error) result
(** Execute a statement inside the transaction, against its snapshot.
    Write statements also enter the replay buffer.  After any error the
    transaction is failed: subsequent statements return [Sql] errors
    until rollback (commit will also refuse).  [timeout_ms] arms a
    cooperative deadline on this statement (expiry fails the transaction
    with {!Timeout}); [session]/[trace_id] attribute its query-log entry
    and spans like {!execute}.  While the engine is degraded, write
    statements are refused with {!Degraded} rather than buffered, since
    commit replay would refuse them anyway. *)

val commit_txn : txn -> (int, error) result
(** Commit: conflict-check against commits sealed after the horizon,
    replay the buffered writes on the canonical engine, group-commit
    with concurrently arriving transactions (one WAL fsync per batch),
    and return this transaction's position in the global commit order
    (0 for a read-only transaction, which commits trivially).  The
    transaction is finished afterwards regardless of outcome. *)

val rollback_txn : txn -> unit
(** Discard the transaction: drop the overlay and release the horizon. *)

val txn_user : txn -> string
val txn_active : txn -> bool

val txn_set_exec_mode : txn -> Bdbms_asql.Context.exec_mode -> unit
(** Apply a session [\exec] override to the transaction's snapshot
    context (it begins with the canonical engine's mode). *)

val close : t -> unit
(** Checkpoint and close the canonical engine.  In-flight transactions
    fail with {!Closed} at their next commit. *)

module Context = Bdbms_asql.Context
module Principal = Bdbms_auth.Principal
module Stats = Bdbms_storage.Stats
module Obs = Bdbms_obs.Obs
module Metrics = Bdbms_obs.Metrics
module Value = Bdbms_relation.Value
module Db = Bdbms.Db

type reply =
  | Outcome of Bdbms_asql.Executor.outcome
  | Began
  | Committed of int
  | Rolled_back

type t = {
  id : int;
  engine : Engine.t;
  user : string;
  mutable txn : Engine.txn option;
  mutable conflict_streak : int;
      (* consecutive Conflict aborts since the last successful commit;
         observed into the retry histogram when a commit finally lands *)
  mutable exec_override : Context.exec_mode option;
      (* session-scoped [\exec] setting: applied per autocommit statement
         and to every transaction this session begins; [None] follows the
         engine default *)
  mutable stmt_timeout_ms : float option;
      (* session-scoped [\timeout] default, overridable per query by the
         wire frame's own deadline; [None] = unbounded *)
  mutable current_stmt : string;
      (* the statement executing right now ("" when idle), surfaced in
         [sys.sessions] *)
  mutable closed : bool;
}

let next_id = ref 0
let id_mu = Mutex.create ()
let live = ref 0

(* Every open session, keyed by id, so [sys.sessions] can list them.
   Guarded by [id_mu] like the id counter and the live gauge. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 16

let fresh_id () =
  Mutex.protect id_mu (fun () ->
      incr next_id;
      !next_id)

let set_gauge engine delta =
  let n = Mutex.protect id_mu (fun () -> live := !live + delta; !live) in
  let o = Engine.obs engine in
  Metrics.set o.Obs.sessions_gauge (float_of_int n)

let create engine ~user =
  (* authentication = existence in the shared principal store; the
     canonical context is only read, but take the engine's view through
     [Engine.db] under no lock — principals mutate only under the engine
     lock via DDL, and [user_exists] is a pure lookup *)
  let ctx = Db.context (Engine.db engine) in
  if
    user <> Context.superuser
    && not (Principal.user_exists ctx.Context.principals user)
  then Error (Engine.Sql (Printf.sprintf "unknown user %S" user))
  else begin
    Stats.record_session_opened (Engine.counters engine);
    set_gauge engine 1;
    let session =
      {
        id = fresh_id ();
        engine;
        user;
        txn = None;
        conflict_streak = 0;
        exec_override = None;
        stmt_timeout_ms = None;
        current_stmt = "";
        closed = false;
      }
    in
    Mutex.protect id_mu (fun () -> Hashtbl.replace registry session.id session);
    Ok session
  end

(* Live rows for the [sys.sessions] virtual table: every open session on
   this [engine] (a process can host several), in id order.  Installed on
   the canonical context by [Server.create] and copied into transaction
   snapshots by [Engine.begin_txn]. *)
let sys_rows engine =
  let sessions =
    Mutex.protect id_mu (fun () ->
        Hashtbl.fold
          (fun _ s acc -> if s.engine == engine then s :: acc else acc)
          registry [])
  in
  List.map
    (fun s ->
      [|
        Value.VInt s.id;
        Value.VString s.user;
        Value.VString (if s.txn <> None then "txn" else "idle");
        Value.VString s.current_stmt;
        Value.VInt s.conflict_streak;
      |])
    (List.sort (fun a b -> compare a.id b.id) sessions)

let id t = t.id
let user t = t.user
let in_txn t = t.txn <> None

let set_exec_mode t mode =
  t.exec_override <- mode;
  (* an open transaction picks the change up immediately *)
  match (t.txn, mode) with
  | Some txn, Some m -> Engine.txn_set_exec_mode txn m
  | Some txn, None ->
      Engine.txn_set_exec_mode txn
        (Db.context (Engine.db t.engine)).Context.exec_mode
  | None, _ -> ()

(* the mode this session's next statement will run under *)
let exec_mode t =
  match t.exec_override with
  | Some m -> m
  | None -> (Db.context (Engine.db t.engine)).Context.exec_mode

let set_stmt_timeout_ms t v =
  (match v with
  | Some ms when ms < 0. -> invalid_arg "Session.set_stmt_timeout_ms: negative"
  | _ -> ());
  t.stmt_timeout_ms <- v

let stmt_timeout_ms t = t.stmt_timeout_ms

(* Transaction-control statements are session state changes, not A-SQL;
   recognize them (case-insensitively, trailing [;] stripped) before
   anything reaches a parser. *)
type control = Begin_txn | Commit_txn | Rollback_txn

let control_of sql =
  let s = String.trim sql in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = ';' then
      String.trim (String.sub s 0 (String.length s - 1))
    else s
  in
  match String.uppercase_ascii s with
  | "BEGIN" | "BEGIN TRANSACTION" | "BEGIN WORK" | "START TRANSACTION" ->
      Some Begin_txn
  | "COMMIT" | "COMMIT WORK" | "COMMIT TRANSACTION" | "END" -> Some Commit_txn
  | "ROLLBACK" | "ROLLBACK WORK" | "ROLLBACK TRANSACTION" | "ABORT" ->
      Some Rollback_txn
  | _ -> None

let rollback_open t =
  match t.txn with
  | Some txn ->
      Engine.rollback_txn txn;
      t.txn <- None
  | None -> ()

let observe_commit_landed t =
  let o = Engine.obs t.engine in
  Metrics.observe o.Obs.conflict_retry_hist t.conflict_streak;
  t.conflict_streak <- 0

let execute t ?timeout_ms ?(trace_id = 0) sql =
  (* the query frame's own deadline wins over the session default *)
  let timeout_ms =
    match timeout_ms with Some _ as v -> v | None -> t.stmt_timeout_ms
  in
  if t.closed then Error Engine.Closed
  else begin
    t.current_stmt <- String.trim sql;
    Fun.protect ~finally:(fun () -> t.current_stmt <- "")
    @@ fun () ->
    match control_of sql with
    | Some Begin_txn -> (
        if t.txn <> None then
          Error (Engine.Sql "a transaction is already in progress")
        else
          match Engine.begin_txn t.engine ~user:t.user () with
          | txn ->
              (match t.exec_override with
              | Some m -> Engine.txn_set_exec_mode txn m
              | None -> ());
              t.txn <- Some txn;
              Ok Began
          | exception Failure e -> Error (Engine.Sql e))
    | Some Commit_txn -> (
        match t.txn with
        | None -> Error (Engine.Sql "no transaction in progress")
        | Some txn -> (
            t.txn <- None;
            match Engine.commit_txn txn with
            | Ok seq ->
                observe_commit_landed t;
                Ok (Committed seq)
            | Error (Engine.Conflict _ as e) ->
                t.conflict_streak <- t.conflict_streak + 1;
                Error e
            | Error e -> Error e))
    | Some Rollback_txn ->
        if t.txn = None then Error (Engine.Sql "no transaction in progress")
        else begin
          rollback_open t;
          Ok Rolled_back
        end
    | None -> (
        match t.txn with
        | Some txn -> (
            match Engine.txn_exec txn ~session:t.id ?timeout_ms ~trace_id sql with
            | Ok outcome -> Ok (Outcome outcome)
            | Error e -> Error e)
        | None -> (
            (* autocommit on the canonical engine *)
            match
              Engine.execute t.engine ~user:t.user ~session:t.id
                ?exec_mode:t.exec_override ?timeout_ms ~trace_id sql
            with
            | Ok outcome ->
                observe_commit_landed t;
                Ok (Outcome outcome)
            | Error e -> Error e))
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    Mutex.protect id_mu (fun () -> Hashtbl.remove registry t.id);
    rollback_open t;
    set_gauge t.engine (-1)
  end

(** Minimal HTTP/1.1 endpoint for monitoring: a Prometheus scrape
    target ([GET /metrics], text exposition format) and a liveness
    probe ([GET /healthz], 503 while the engine is degraded).

    Runs its own accept-loop thread next to the binary-protocol
    listeners; every response closes the connection, so there is no
    keep-alive or header state to manage. *)

type t

val serve :
  host:string ->
  port:int ->
  metrics:(unit -> string) ->
  health:(unit -> string option) ->
  unit ->
  t
(** Bind [host:port] (port [0] picks a free one) and serve.  [metrics]
    is called per scrape (typically {!Engine.metrics}); [health]
    returns [Some reason] while degraded, turning [/healthz] into a
    503.  @raise Unix.Unix_error when the bind fails. *)

val bound_port : t -> int
(** The actually bound TCP port (after a [port:0] bind). *)

val stop : t -> unit
(** Close the listener and join the accept thread.  In-flight request
    threads finish on their own. *)

(** Blocking protocol client: one socket, one session.  Used by the
    CLI's [--connect] remote REPL and the concurrency tests. *)

type t

val connect_unix : string -> t
val connect_tcp : host:string -> port:int -> t

val hello : t -> user:string -> (int, string) result
(** Open the session; returns the server-assigned session id and learns
    the server's protocol version from the handshake. *)

val proto : t -> int
(** The server's protocol version (1 until {!hello} answers). *)

val last_trace_id : t -> int
(** The trace id stamped on the most recent {!query}/{!query_retry}
    (0 when the server predates protocol 2). *)

val request : t -> Protocol.request -> Protocol.response
(** Send one frame, wait for the answer.
    @raise Protocol.Protocol_error on transport or framing failure. *)

val query : t -> ?timeout_ms:int -> string -> Protocol.response
(** One statement; [timeout_ms] rides in the frame as the statement's
    deadline (tag [0x04]) — the server aborts and rolls it back on
    expiry, answering [E_timeout]. *)

val query_retry :
  t ->
  ?timeout_ms:int ->
  ?policy:Bdbms_util.Backoff.policy ->
  ?on_retry:(attempt:int -> delay_ms:float -> unit) ->
  string ->
  Protocol.response * int
(** [query] with client-side auto-retry on retryable error frames
    ([E_busy], [E_conflict], [E_degraded]), sleeping a jittered
    exponential backoff between attempts; returns the final response and
    how many retries were spent.  Only safe for autocommit statements —
    inside an explicit transaction the {e transaction} must restart, not
    the statement. *)

val control : t -> string -> Protocol.response

val close : t -> unit

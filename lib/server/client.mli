(** Blocking protocol client: one socket, one session.  Used by the
    CLI's [--connect] remote REPL and the concurrency tests. *)

type t

val connect_unix : string -> t
val connect_tcp : host:string -> port:int -> t

val hello : t -> user:string -> (int, string) result
(** Open the session; returns the server-assigned session id. *)

val request : t -> Protocol.request -> Protocol.response
(** Send one frame, wait for the answer.
    @raise Protocol.Protocol_error on transport or framing failure. *)

val query : t -> string -> Protocol.response
val control : t -> string -> Protocol.response

val close : t -> unit

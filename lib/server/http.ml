(* A deliberately tiny HTTP/1.1 responder for the Prometheus scrape
   endpoint: GET /metrics answers the text exposition format, GET
   /healthz answers 200 (or 503 while the engine is degraded), anything
   else 404/405.  One accept-loop thread, one short-lived thread per
   request, Connection: close on every response — scrapers reconnect
   per scrape anyway, and keeping the server this small means no
   request parsing beyond the request line and no keep-alive state. *)

type t = {
  h_fd : Unix.file_descr;
  mutable h_thread : Thread.t option;
  mutable h_stopping : bool;
}

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status content_type (String.length body) body

(* Prometheus' registered content type for the text exposition format *)
let metrics_content_type = "text/plain; version=0.0.4; charset=utf-8"

let read_line_crlf fd buf =
  Buffer.clear buf;
  let b = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      match Unix.read fd b 0 1 with
      | 0 -> None
      | _ ->
          let c = Bytes.get b 0 in
          if c = '\n' then Some (String.trim (Buffer.contents buf))
          else begin
            Buffer.add_char buf c;
            go ()
          end
      | exception Unix.Unix_error _ -> None
  in
  go ()

let read_request_line fd =
  let buf = Buffer.create 128 in
  let line = read_line_crlf fd buf in
  (* drain the headers up to the blank line: closing the socket with
     unread request bytes would RST the client before it reads the
     answer.  GETs carry no body, so the blank line ends the request. *)
  (match line with
  | Some _ ->
      let rec drain n =
        if n < 100 then
          match read_line_crlf fd buf with
          | Some "" | None -> ()
          | Some _ -> drain (n + 1)
      in
      drain 0
  | None -> ());
  line

let handle ~metrics ~health fd =
  (match read_request_line fd with
  | None -> ()
  | Some line ->
      let reply =
        match String.split_on_char ' ' line with
        | [ "GET"; "/metrics"; _ ] | [ "GET"; "/metrics" ] ->
            response ~status:"200 OK" ~content_type:metrics_content_type
              (metrics ())
        | [ "GET"; "/healthz"; _ ] | [ "GET"; "/healthz" ] -> (
            match health () with
            | None -> response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
            | Some reason ->
                response ~status:"503 Service Unavailable"
                  ~content_type:"text/plain"
                  (Printf.sprintf "degraded: %s\n" reason))
        | "GET" :: _ ->
            response ~status:"404 Not Found" ~content_type:"text/plain"
              "not found (try /metrics or /healthz)\n"
        | _ ->
            response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
              "only GET is served\n"
      in
      let b = Bytes.of_string reply in
      let len = Bytes.length b in
      let sent = ref 0 in
      try
        while !sent < len do
          sent := !sent + Unix.write fd b !sent (len - !sent)
        done
      with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve ~host ~port ~metrics ~health () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (addr, port));
  Unix.listen lfd 16;
  let t = { h_fd = lfd; h_thread = None; h_stopping = false } in
  let loop () =
    let continue = ref true in
    while !continue do
      match Unix.accept lfd with
      | fd, _ -> ignore (Thread.create (fun () -> handle ~metrics ~health fd) ())
      | exception
          Unix.Unix_error
            ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
          continue := not t.h_stopping
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  t.h_thread <- Some (Thread.create loop ());
  t

let bound_port t =
  match Unix.getsockname t.h_fd with
  | Unix.ADDR_INET (_, port) -> port
  | _ -> invalid_arg "Http.bound_port: not a TCP listener"

let stop t =
  t.h_stopping <- true;
  (try Unix.shutdown t.h_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.h_fd with Unix.Unix_error _ -> ());
  match t.h_thread with Some th -> Thread.join th | None -> ()

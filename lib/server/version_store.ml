module Page = Bdbms_storage.Page

(* One retained version of a page: [image] is the content the page had
   before commit [end_csn]; equivalently, the content seen by any
   horizon h with h < end_csn that no earlier entry covers. *)
type entry = { end_csn : int; image : Page.t }

type t = {
  mutable csn : int;
  chains : (int, entry list ref) Hashtbl.t; (* newest (highest csn) first *)
  pending : (int, Page.t) Hashtbl.t; (* pre-images of the open cycle *)
  horizons : (int, int) Hashtbl.t; (* live snapshot horizons, refcounted *)
  mu : Mutex.t;
}

let create () =
  {
    csn = 0;
    chains = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    horizons = Hashtbl.create 8;
    mu = Mutex.create ();
  }

let csn t = Mutex.protect t.mu (fun () -> t.csn)

let capture t id page =
  Mutex.protect t.mu (fun () ->
      (* Only the FIRST announcement of a cycle is the committed image:
         if the frame was evicted and re-dirtied, the second announcement
         carries uncommitted bytes and must not replace it. *)
      if not (Hashtbl.mem t.pending id) then
        Hashtbl.replace t.pending id (Page.copy page))

let abort_cycle t = Mutex.protect t.mu (fun () -> Hashtbl.reset t.pending)

let min_horizon_locked t =
  Hashtbl.fold (fun h _ acc -> min h acc) t.horizons max_int

(* Drop every entry no live horizon can select.  An entry with
   [end_csn <= min live horizon] is dead: any such horizon h has
   h >= end_csn, and [read] only returns entries with end_csn > h. *)
let prune_locked t =
  let floor = min_horizon_locked t in
  let dead = ref [] in
  Hashtbl.iter
    (fun id chain ->
      chain := List.filter (fun e -> e.end_csn > floor) !chain;
      if !chain = [] then dead := id :: !dead)
    t.chains;
  List.iter (Hashtbl.remove t.chains) !dead

let seal t =
  Mutex.protect t.mu (fun () ->
      t.csn <- t.csn + 1;
      Hashtbl.iter
        (fun id image ->
          let chain =
            match Hashtbl.find_opt t.chains id with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.replace t.chains id c;
                c
          in
          chain := { end_csn = t.csn; image } :: !chain)
        t.pending;
      Hashtbl.reset t.pending;
      prune_locked t;
      t.csn)

let read t ~horizon id =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.chains id with
      | None -> None
      | Some chain ->
          (* newest-first: the LAST entry with end_csn > horizon is the
             one with the smallest such csn — the content at [horizon] *)
          let best =
            List.fold_left
              (fun acc e -> if e.end_csn > horizon then Some e else acc)
              None !chain
          in
          Option.map (fun e -> Page.copy e.image) best)

let retain t ~horizon =
  Mutex.protect t.mu (fun () ->
      let n = Option.value ~default:0 (Hashtbl.find_opt t.horizons horizon) in
      Hashtbl.replace t.horizons horizon (n + 1))

let release t ~horizon =
  Mutex.protect t.mu (fun () ->
      (match Hashtbl.find_opt t.horizons horizon with
      | Some n when n > 1 -> Hashtbl.replace t.horizons horizon (n - 1)
      | Some _ -> Hashtbl.remove t.horizons horizon
      | None -> ());
      prune_locked t)

let min_horizon t = Mutex.protect t.mu (fun () -> min_horizon_locked t)

let live_horizons t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold (fun _ n acc -> acc + n) t.horizons 0)

let chain_pages t = Mutex.protect t.mu (fun () -> Hashtbl.length t.chains)

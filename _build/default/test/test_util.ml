(* Tests for bdbms_util: RLE, bitmaps, rectangles, XML, PRNG, clock. *)

open Bdbms_util

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ RLE *)

let test_rle_roundtrip_basic () =
  List.iter
    (fun s -> checks ("roundtrip " ^ s) s (Rle.decode (Rle.encode s)))
    [ ""; "A"; "AAAA"; "ABAB"; "LLLEEEEEEEHHH"; "AABBBCCCCDDDDD" ]

let test_rle_paper_example () =
  (* Figure 12's convention: LLLEEEEEEEH... encodes to L3E7H... *)
  let s = "LLLEEEEEEEHHHHHHHHHHHHHHHHHHHHHHEEEEEELLEEELHHHHHHHHHHLL" in
  let r = Rle.encode s in
  checks "textual form prefix" "L3E7H22E6L2E3L1H10L2" (Rle.to_string r);
  checki "raw length" (String.length s) (Rle.raw_length r)

let test_rle_of_string () =
  let r = Rle.of_string "L3E7H22" in
  checks "decode" ("LLL" ^ "EEEEEEE" ^ String.make 22 'H') (Rle.decode r);
  Alcotest.check_raises "missing length" (Invalid_argument "Rle.of_string: missing run length")
    (fun () -> ignore (Rle.of_string "LE3"))

let test_rle_char_at () =
  let r = Rle.encode "AABBBC" in
  checki "char 0" (Char.code 'A') (Char.code (Rle.char_at r 0));
  checki "char 1" (Char.code 'A') (Char.code (Rle.char_at r 1));
  checki "char 2" (Char.code 'B') (Char.code (Rle.char_at r 2));
  checki "char 5" (Char.code 'C') (Char.code (Rle.char_at r 5));
  Alcotest.check_raises "oob" (Invalid_argument "Rle.char_at") (fun () ->
      ignore (Rle.char_at r 6))

let test_rle_sub () =
  let r = Rle.encode "AAABBBCCC" in
  checks "middle" "ABBBC" (Rle.decode (Rle.sub r ~pos:2 ~len:5));
  checks "prefix" "AAA" (Rle.decode (Rle.sub r ~pos:0 ~len:3));
  checks "suffix" "CCC" (Rle.decode (Rle.sub r ~pos:6 ~len:3));
  checks "empty" "" (Rle.decode (Rle.sub r ~pos:4 ~len:0))

let test_rle_append () =
  let a = Rle.encode "AAB" and b = Rle.encode "BBC" in
  let c = Rle.append a b in
  checks "merged boundary" "A2B3C1" (Rle.to_string c)

let test_rle_compare () =
  let cmp a b = Rle.compare (Rle.encode a) (Rle.encode b) in
  checkb "eq" true (cmp "AABB" "AABB" = 0);
  checkb "lt" true (cmp "AAB" "AAC" < 0);
  checkb "prefix lt" true (cmp "AA" "AAA" < 0);
  checkb "gt" true (cmp "B" "AZZZ" > 0);
  checki "compare_raw eq" 0 (Rle.compare_raw (Rle.encode "HELLO") "HELLO")

let test_rle_find_substring () =
  let r = Rle.encode "LLLEEEHHHHLL" in
  let find p = Rle.find_substring r ~pattern:p in
  check Alcotest.(option int) "EEH" (Some 4) (find "EEHH");
  check Alcotest.(option int) "prefix" (Some 0) (find "LLLE");
  check Alcotest.(option int) "first LL inside LLL" (Some 0) (find "LL");
  check Alcotest.(option int) "suffix" (Some 9) (find "HLL");
  check Alcotest.(option int) "miss" None (find "HLH");
  check Alcotest.(option int) "empty" (Some 0) (find "");
  check Alcotest.(option int) "whole" (Some 0) (find "LLLEEEHHHHLL")

let test_rle_compression_stats () =
  let r = Rle.encode (String.make 100 'H') in
  checki "runs" 1 (Rle.run_count r);
  checki "encoded size" 4 (Rle.encoded_size_bytes r);
  checkb "ratio" true (Rle.compression_ratio r > 20.0)

let rle_qcheck =
  let open QCheck in
  let seq_gen =
    (* run-heavy strings over a small alphabet, like secondary structures *)
    let gen =
      Gen.(
        list_size (int_bound 20)
          (pair (oneofl [ 'H'; 'E'; 'L' ]) (int_range 1 12))
        >|= fun runs ->
        String.concat "" (List.map (fun (c, n) -> String.make n c) runs))
    in
    make ~print:Print.string gen
  in
  [
    Test.make ~name:"rle roundtrip" ~count:500 seq_gen (fun s ->
        Rle.decode (Rle.encode s) = s);
    Test.make ~name:"rle textual roundtrip" ~count:500 seq_gen (fun s ->
        Rle.decode (Rle.of_string (Rle.to_string (Rle.encode s))) = s);
    Test.make ~name:"rle compare agrees with string compare" ~count:500
      (pair seq_gen seq_gen)
      (fun (a, b) ->
        let c = Rle.compare (Rle.encode a) (Rle.encode b) in
        compare c 0 = compare (String.compare a b) 0);
    Test.make ~name:"rle char_at agrees" ~count:200 seq_gen (fun s ->
        QCheck.assume (s <> "");
        let r = Rle.encode s in
        let ok = ref true in
        String.iteri (fun i c -> if Rle.char_at r i <> c then ok := false) s;
        !ok);
    Test.make ~name:"rle find_substring agrees with naive search" ~count:300
      (pair seq_gen seq_gen)
      (fun (s, p) ->
        QCheck.assume (String.length p <= String.length s && p <> "");
        let naive =
          let n = String.length s and m = String.length p in
          let rec go i =
            if i + m > n then None
            else if String.sub s i m = p then Some i
            else go (i + 1)
          in
          go 0
        in
        Rle.find_substring (Rle.encode s) ~pattern:p = naive);
    Test.make ~name:"rle sub agrees with String.sub" ~count:300
      (pair seq_gen (pair small_nat small_nat))
      (fun (s, (pos, len)) ->
        QCheck.assume (pos + len <= String.length s);
        Rle.decode (Rle.sub (Rle.encode s) ~pos ~len) = String.sub s pos len);
  ]

(* --------------------------------------------------------------- Bitmap *)

let test_bitmap_basic () =
  let b = Bitmap.create ~rows:3 ~cols:4 in
  checki "empty count" 0 (Bitmap.count_set b);
  Bitmap.set b ~row:1 ~col:2 true;
  checkb "get set bit" true (Bitmap.get b ~row:1 ~col:2);
  checkb "get clear bit" false (Bitmap.get b ~row:0 ~col:0);
  checki "count" 1 (Bitmap.count_set b);
  Bitmap.set b ~row:1 ~col:2 false;
  checki "count after clear" 0 (Bitmap.count_set b)

let test_bitmap_row_col () =
  let b = Bitmap.create ~rows:4 ~cols:3 in
  Bitmap.set_row b ~row:2 true;
  checki "row set" 3 (Bitmap.count_set b);
  Bitmap.set_col b ~col:0 true;
  (* row 2 col 0 was already set *)
  checki "col adds" 6 (Bitmap.count_set b)

let test_bitmap_rle_roundtrip () =
  let b = Bitmap.create ~rows:5 ~cols:8 in
  Bitmap.set_row b ~row:1 true;
  Bitmap.set b ~row:3 ~col:4 true;
  let runs = Bitmap.to_rle_runs b in
  let b' = Bitmap.of_rle_runs ~rows:5 ~cols:8 runs in
  checkb "roundtrip" true (Bitmap.equal b b')

let test_bitmap_compression () =
  (* clustered outdated cells compress well; scattered do not *)
  let clustered = Bitmap.create ~rows:100 ~cols:10 in
  for row = 40 to 60 do
    Bitmap.set_row clustered ~row true
  done;
  checkb "clustered compresses below raw" true
    (Bitmap.compressed_size_bytes clustered < Bitmap.raw_size_bytes clustered);
  let scattered = Bitmap.create ~rows:100 ~cols:10 in
  for i = 0 to 99 do
    Bitmap.set scattered ~row:i ~col:(i * 7 mod 10) true
  done;
  checkb "scattered compresses worse than clustered" true
    (Bitmap.compressed_size_bytes scattered
    > Bitmap.compressed_size_bytes clustered)

let test_bitmap_union () =
  let a = Bitmap.create ~rows:2 ~cols:2 and b = Bitmap.create ~rows:2 ~cols:2 in
  Bitmap.set a ~row:0 ~col:0 true;
  Bitmap.set b ~row:1 ~col:1 true;
  Bitmap.union_into ~dst:a ~src:b;
  checki "union count" 2 (Bitmap.count_set a);
  let c = Bitmap.create ~rows:3 ~cols:2 in
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Bitmap.union_into: dimension mismatch") (fun () ->
      Bitmap.union_into ~dst:a ~src:c)

let test_bitmap_append_rows () =
  let b = Bitmap.create ~rows:2 ~cols:3 in
  Bitmap.set b ~row:1 ~col:2 true;
  let b' = Bitmap.append_rows b 2 in
  checki "rows" 4 (Bitmap.rows b');
  checkb "old bit kept" true (Bitmap.get b' ~row:1 ~col:2);
  checki "count" 1 (Bitmap.count_set b')

let bitmap_qcheck =
  let open QCheck in
  let ops_gen =
    make
      ~print:(fun l -> String.concat ";" (List.map (fun (r, c, v) ->
           Printf.sprintf "(%d,%d,%b)" r c v) l))
      Gen.(list_size (int_bound 40) (triple (int_bound 9) (int_bound 6) bool))
  in
  [
    Test.make ~name:"bitmap rle roundtrip" ~count:300 ops_gen (fun ops ->
        let b = Bitmap.create ~rows:10 ~cols:7 in
        List.iter (fun (row, col, v) -> Bitmap.set b ~row ~col v) ops;
        Bitmap.equal b (Bitmap.of_rle_runs ~rows:10 ~cols:7 (Bitmap.to_rle_runs b)));
    Test.make ~name:"bitmap count matches iter_set" ~count:300 ops_gen (fun ops ->
        let b = Bitmap.create ~rows:10 ~cols:7 in
        List.iter (fun (row, col, v) -> Bitmap.set b ~row ~col v) ops;
        let n = ref 0 in
        Bitmap.iter_set b (fun _ _ -> incr n);
        !n = Bitmap.count_set b);
  ]

(* ----------------------------------------------------------------- Rect *)

let test_rect_basic () =
  let r = Rect.make ~row_lo:1 ~row_hi:3 ~col_lo:0 ~col_hi:2 in
  checki "area" 9 (Rect.area r);
  checkb "contains" true (Rect.contains r ~row:2 ~col:1);
  checkb "not contains" false (Rect.contains r ~row:0 ~col:1);
  Alcotest.check_raises "bad rect" (Invalid_argument "Rect.make") (fun () ->
      ignore (Rect.make ~row_lo:3 ~row_hi:1 ~col_lo:0 ~col_hi:0))

let test_rect_intersection () =
  let a = Rect.make ~row_lo:0 ~row_hi:4 ~col_lo:0 ~col_hi:4 in
  let b = Rect.make ~row_lo:3 ~row_hi:6 ~col_lo:2 ~col_hi:8 in
  (match Rect.intersection a b with
  | Some i ->
      checki "i.row_lo" 3 i.Rect.row_lo;
      checki "i.row_hi" 4 i.Rect.row_hi;
      checki "i.col_lo" 2 i.Rect.col_lo;
      checki "i.col_hi" 4 i.Rect.col_hi
  | None -> Alcotest.fail "expected intersection");
  let c = Rect.make ~row_lo:10 ~row_hi:11 ~col_lo:0 ~col_hi:1 in
  checkb "disjoint" true (Rect.intersection a c = None)

let test_rect_merge () =
  let a = Rect.make ~row_lo:0 ~row_hi:1 ~col_lo:0 ~col_hi:2 in
  let b = Rect.make ~row_lo:2 ~row_hi:3 ~col_lo:0 ~col_hi:2 in
  (match Rect.try_merge a b with
  | Some m -> checki "merged area" 12 (Rect.area m)
  | None -> Alcotest.fail "expected vertical merge");
  let c = Rect.make ~row_lo:0 ~row_hi:1 ~col_lo:3 ~col_hi:3 in
  (match Rect.try_merge a c with
  | Some m -> checki "merged horiz area" 8 (Rect.area m)
  | None -> Alcotest.fail "expected horizontal merge");
  let d = Rect.make ~row_lo:5 ~row_hi:6 ~col_lo:5 ~col_hi:6 in
  checkb "no merge" true (Rect.try_merge a d = None)

let test_rect_cover () =
  (* an L-shape covers with 2 rectangles *)
  let cells = [ (0, 0); (0, 1); (1, 0); (2, 0) ] in
  let cover = Rect.cover_of_cells cells in
  let covered = List.concat_map Rect.cells cover in
  checki "cover is exact" 4 (List.length covered);
  List.iter
    (fun c -> checkb "cell covered" true (List.mem c covered))
    cells;
  (* full rectangle covers with 1 *)
  let full = Rect.cover_of_cells (Rect.cells (Rect.make ~row_lo:0 ~row_hi:3 ~col_lo:0 ~col_hi:2)) in
  checki "full rect single cover" 1 (List.length full)

let test_rect_subtract () =
  let a = Rect.make ~row_lo:0 ~row_hi:4 ~col_lo:0 ~col_hi:4 in
  let hole = Rect.make ~row_lo:1 ~row_hi:2 ~col_lo:1 ~col_hi:2 in
  let parts = Rect.subtract a hole in
  let total = List.fold_left (fun acc r -> acc + Rect.area r) 0 parts in
  checki "subtract area" (25 - 4) total;
  List.iter
    (fun p -> checkb "no overlap with hole" false (Rect.intersects p hole))
    parts

let rect_qcheck =
  let open QCheck in
  let cells_gen =
    make
      ~print:(fun l -> String.concat ";" (List.map (fun (r, c) -> Printf.sprintf "(%d,%d)" r c) l))
      Gen.(list_size (int_bound 30) (pair (int_bound 8) (int_bound 8)))
  in
  [
    Test.make ~name:"cover_of_cells covers exactly the input set" ~count:300 cells_gen
      (fun cells ->
        let module S = Set.Make (struct
          type t = int * int
          let compare = compare
        end) in
        let input = S.of_list cells in
        let cover = Rect.cover_of_cells cells in
        let output = S.of_list (List.concat_map Rect.cells cover) in
        S.equal input output);
    Test.make ~name:"cover rectangles are pairwise disjoint" ~count:300 cells_gen
      (fun cells ->
        let cover = Array.of_list (Rect.cover_of_cells cells) in
        let ok = ref true in
        Array.iteri
          (fun i a ->
            Array.iteri (fun j b -> if i < j && Rect.intersects a b then ok := false) cover)
          cover;
        !ok);
  ]

(* ------------------------------------------------------------------ XML *)

let test_xml_roundtrip () =
  let doc =
    Xml_lite.element "Annotation"
      ~attrs:[ ("curator", "admin") ]
      [ Xml_lite.element "source" [ Xml_lite.text "GenoBase" ];
        Xml_lite.element "note" [ Xml_lite.text "obtained from <RegulonDB> & more" ] ]
  in
  let s = Xml_lite.to_string doc in
  let doc' = Xml_lite.parse s in
  checkb "roundtrip" true (doc = doc')

let test_xml_parse_basic () =
  let doc = Xml_lite.parse "<Annotation>obtained from GenoBase</Annotation>" in
  checks "text" "obtained from GenoBase" (Xml_lite.text_content doc);
  check Alcotest.(option string) "tag" (Some "Annotation") (Xml_lite.tag doc)

let test_xml_attrs_and_path () =
  let doc =
    Xml_lite.parse
      "<prov><source db=\"RegulonDB\" table=\"genes\"/><time>42</time></prov>"
  in
  let sources = Xml_lite.find_path doc [ "source" ] in
  checki "one source" 1 (List.length sources);
  check Alcotest.(option string) "db attr" (Some "RegulonDB")
    (Xml_lite.attr (List.hd sources) "db");
  checks "time" "42" (Xml_lite.text_content (List.hd (Xml_lite.find_path doc [ "time" ])))

let test_xml_errors () =
  let expect_fail s =
    match Xml_lite.parse s with
    | exception Xml_lite.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect_fail "<a><b></a></b>";
  expect_fail "<a>";
  expect_fail "no xml";
  expect_fail "<a></a><b></b>"

let test_xml_escape () =
  checks "escape" "&lt;a&gt; &amp; &quot;b&quot;" (Xml_lite.escape "<a> & \"b\"");
  checks "unescape" "<a> & \"b\"" (Xml_lite.unescape "&lt;a&gt; &amp; &quot;b&quot;")

let test_xml_schema () =
  let schema =
    Xml_lite.Schema.make ~root:"provenance"
      [
        {
          Xml_lite.Schema.tag = "provenance";
          required_attrs = [];
          allowed_children = Some [ "source"; "operation"; "time" ];
          required_children = [ "source"; "time" ];
        };
        {
          Xml_lite.Schema.tag = "source";
          required_attrs = [ "db" ];
          allowed_children = None;
          required_children = [];
        };
      ]
  in
  let good = Xml_lite.parse "<provenance><source db=\"X\"/><time>3</time></provenance>" in
  checkb "valid" true (Xml_lite.Schema.validate schema good = Ok ());
  let missing_attr = Xml_lite.parse "<provenance><source/><time>3</time></provenance>" in
  checkb "missing attr" true (Result.is_error (Xml_lite.Schema.validate schema missing_attr));
  let bad_child = Xml_lite.parse "<provenance><source db=\"X\"/><time>3</time><junk/></provenance>" in
  checkb "bad child" true (Result.is_error (Xml_lite.Schema.validate schema bad_child));
  let wrong_root = Xml_lite.parse "<prov><source db=\"X\"/></prov>" in
  checkb "wrong root" true (Result.is_error (Xml_lite.Schema.validate schema wrong_root))

(* ----------------------------------------------------------- PRNG/clock *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    checki "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 43 in
  let diff = ref false in
  let a' = Prng.create 42 in
  for _ = 1 to 20 do
    if Prng.int a' 1000 <> Prng.int c 1000 then diff := true
  done;
  checkb "different seeds differ" true !diff

let test_prng_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 10 in
    checkb "in bounds" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 100 do
    let v = Prng.int_in t ~lo:5 ~hi:8 in
    checkb "in range" true (v >= 5 && v <= 8)
  done

let test_prng_geometric_mean () =
  let t = Prng.create 11 in
  let n = 20000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Prng.geometric t ~p:0.25
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* mean of geometric(p) is 1/p = 4 *)
  checkb "geometric mean near 4" true (mean > 3.6 && mean < 4.4)

let test_clock () =
  let c = Clock.create () in
  checki "start" 1 (Clock.now c);
  checki "tick" 2 (Clock.tick c);
  checki "tick2" 3 (Clock.tick c);
  Clock.advance_to c 10;
  checki "advanced" 10 (Clock.now c);
  Clock.advance_to c 5;
  checki "no regress" 10 (Clock.now c)

let test_idgen () =
  let g = Idgen.create ~prefix:"ann" () in
  checks "first" "ann1" (Idgen.next g);
  checks "second" "ann2" (Idgen.next g);
  checki "raw" 3 (Idgen.next_int g)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "bdbms_util"
    [
      ( "rle",
        [
          Alcotest.test_case "roundtrip basic" `Quick test_rle_roundtrip_basic;
          Alcotest.test_case "paper example" `Quick test_rle_paper_example;
          Alcotest.test_case "of_string" `Quick test_rle_of_string;
          Alcotest.test_case "char_at" `Quick test_rle_char_at;
          Alcotest.test_case "sub" `Quick test_rle_sub;
          Alcotest.test_case "append" `Quick test_rle_append;
          Alcotest.test_case "compare" `Quick test_rle_compare;
          Alcotest.test_case "find_substring" `Quick test_rle_find_substring;
          Alcotest.test_case "compression stats" `Quick test_rle_compression_stats;
        ] );
      ("rle-properties", q rle_qcheck);
      ( "bitmap",
        [
          Alcotest.test_case "basic" `Quick test_bitmap_basic;
          Alcotest.test_case "row/col" `Quick test_bitmap_row_col;
          Alcotest.test_case "rle roundtrip" `Quick test_bitmap_rle_roundtrip;
          Alcotest.test_case "compression" `Quick test_bitmap_compression;
          Alcotest.test_case "union" `Quick test_bitmap_union;
          Alcotest.test_case "append rows" `Quick test_bitmap_append_rows;
        ] );
      ("bitmap-properties", q bitmap_qcheck);
      ( "rect",
        [
          Alcotest.test_case "basic" `Quick test_rect_basic;
          Alcotest.test_case "intersection" `Quick test_rect_intersection;
          Alcotest.test_case "merge" `Quick test_rect_merge;
          Alcotest.test_case "cover" `Quick test_rect_cover;
          Alcotest.test_case "subtract" `Quick test_rect_subtract;
        ] );
      ("rect-properties", q rect_qcheck);
      ( "xml",
        [
          Alcotest.test_case "roundtrip" `Quick test_xml_roundtrip;
          Alcotest.test_case "parse basic" `Quick test_xml_parse_basic;
          Alcotest.test_case "attrs and path" `Quick test_xml_attrs_and_path;
          Alcotest.test_case "errors" `Quick test_xml_errors;
          Alcotest.test_case "escape" `Quick test_xml_escape;
          Alcotest.test_case "schema validation" `Quick test_xml_schema;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "geometric mean" `Quick test_prng_geometric_mean;
        ] );
      ( "clock",
        [
          Alcotest.test_case "clock" `Quick test_clock;
          Alcotest.test_case "idgen" `Quick test_idgen;
        ] );
    ]

test/test_index.ml: Alcotest Array Bdbms_index Bdbms_storage Bdbms_util Btree Char Fun Gen Hashtbl Key_codec List Printf QCheck QCheck_alcotest Rtree String Test

test/test_asql.mli:

test/test_spgist.mli:

test/test_bio.mli:

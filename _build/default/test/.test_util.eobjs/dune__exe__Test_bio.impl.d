test/test_bio.ml: Alcotest Array Bdbms_bio Bdbms_dependency Bdbms_relation Bdbms_util Blast_like Dna Gen List Print Printf QCheck QCheck_alcotest Result Secondary String Test Translate Workload

test/test_sbc.mli:

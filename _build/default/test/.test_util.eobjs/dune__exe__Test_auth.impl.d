test/test_auth.ml: Acl Alcotest Approval Bdbms_auth Bdbms_relation Bdbms_storage Bdbms_util Gen List Option Principal Printf QCheck QCheck_alcotest Result String Test

test/test_spgist.ml: Alcotest Array Bdbms_spgist Bdbms_storage Bdbms_util Gen Kd_tree List Print Printf QCheck QCheck_alcotest Quadtree Regex_lite Result String Test Trie

test/test_annotation.ml: Alcotest Ann Ann_pred Ann_store Bdbms_annotation Bdbms_provenance Bdbms_relation Bdbms_storage Bdbms_util List Manager Printf Propagate Region Result

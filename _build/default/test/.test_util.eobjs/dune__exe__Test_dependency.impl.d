test/test_dependency.ml: Alcotest Bdbms_dependency Bdbms_relation Bdbms_storage Dep_graph List Outdated Procedure Result Rule Rule_set String Tracker

test/test_annotation.mli:

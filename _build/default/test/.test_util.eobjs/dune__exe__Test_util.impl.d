test/test_util.ml: Alcotest Array Bdbms_util Bitmap Char Clock Gen Idgen List Print Printf Prng QCheck QCheck_alcotest Rect Result Rle Set String Test Xml_lite

test/test_sbc.ml: Alcotest Array Bdbms_sbc Bdbms_storage Bdbms_util Buffer Char Gen List Print Printf QCheck QCheck_alcotest Sbc_tree String String_btree Test Text_store

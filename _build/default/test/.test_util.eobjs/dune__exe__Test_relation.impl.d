test/test_relation.ml: Alcotest Bdbms_relation Bdbms_storage Bdbms_util Cursor Expr Gen List Ops Option Printf QCheck QCheck_alcotest Result Schema String Table Test Tuple Value

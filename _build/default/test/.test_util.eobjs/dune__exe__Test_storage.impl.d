test/test_storage.ml: Alcotest Array Bdbms_storage Buffer_pool Disk Gen Hashtbl Heap_file List Page Printf QCheck QCheck_alcotest Stats String Test

test/test_auth.mli:

test/test_dependency.mli:

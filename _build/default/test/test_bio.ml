(* Tests for bdbms_bio: DNA utilities, genetic-code translation, the
   BLAST-like scorer, secondary-structure generation, and the workload
   generators' determinism. *)

open Bdbms_bio
module Prng = Bdbms_util.Prng
module Value = Bdbms_relation.Value
module Procedure = Bdbms_dependency.Procedure

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ dna *)

let test_dna_basics () =
  checkb "valid" true (Dna.is_valid "ACGTACGT");
  checkb "invalid" false (Dna.is_valid "ACGU");
  checkb "empty valid" true (Dna.is_valid "");
  checks "revcomp" "CGAT" (Dna.reverse_complement "ATCG");
  checks "revcomp twice" "ATCG" (Dna.reverse_complement (Dna.reverse_complement "ATCG"));
  checkf "gc" 0.5 (Dna.gc_content "ATGC");
  checkf "gc empty" 0.0 (Dna.gc_content "");
  (match Dna.reverse_complement "AXC" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad base accepted")

let test_dna_random_gene () =
  let rng = Prng.create 5 in
  for _ = 1 to 20 do
    let g = Dna.random_gene rng ~codons:10 in
    checki "length" 30 (String.length g);
    checks "starts ATG" "ATG" (String.sub g 0 3);
    let last = String.sub g 27 3 in
    checkb "ends with stop" true (List.mem last [ "TAA"; "TAG"; "TGA" ]);
    (* no internal stop codons *)
    for i = 1 to 8 do
      checkb "no internal stop" false (List.mem (String.sub g (i * 3) 3) [ "TAA"; "TAG"; "TGA" ])
    done
  done;
  match Dna.random_gene rng ~codons:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gene of one codon accepted"

let test_dna_mutate () =
  let rng = Prng.create 7 in
  let s = Dna.random rng ~len:100 in
  let s' = Dna.mutate rng s ~edits:5 in
  checki "same length" 100 (String.length s');
  checkb "still valid" true (Dna.is_valid s')

(* ------------------------------------------------------------ translate *)

let test_codon_table () =
  (* spot checks against the standard genetic code *)
  Alcotest.(check (option char)) "ATG" (Some 'M') (Translate.codon_to_aa "ATG");
  Alcotest.(check (option char)) "TGG" (Some 'W') (Translate.codon_to_aa "TGG");
  Alcotest.(check (option char)) "AAA" (Some 'K') (Translate.codon_to_aa "AAA");
  Alcotest.(check (option char)) "GGC" (Some 'G') (Translate.codon_to_aa "GGC");
  Alcotest.(check (option char)) "TAA stop" None (Translate.codon_to_aa "TAA");
  Alcotest.(check (option char)) "TAG stop" None (Translate.codon_to_aa "TAG");
  Alcotest.(check (option char)) "TGA stop" None (Translate.codon_to_aa "TGA");
  (match Translate.codon_to_aa "AT" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short codon accepted");
  (* all 64 codons are covered *)
  let bases = [ 'A'; 'C'; 'G'; 'T' ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              ignore (Translate.codon_to_aa (Printf.sprintf "%c%c%c" a b c)))
            bases)
        bases)
    bases

let test_translate () =
  (match Translate.translate "ATGAAATGGTAA" with
  | Ok p -> checks "MKW" "MKW" p
  | Error e -> Alcotest.fail e);
  (* stop ends translation early *)
  (match Translate.translate "ATGTAAAAATGG" with
  | Ok p -> checks "stops at TAA" "M" p
  | Error e -> Alcotest.fail e);
  checkb "no start" true (Result.is_error (Translate.translate "AAAATGTAA"));
  checkb "bad length" true (Result.is_error (Translate.translate "ATGA"));
  checkb "not dna" true (Result.is_error (Translate.translate "ATGXXXTAA"));
  (* generated ORFs always translate *)
  let rng = Prng.create 11 in
  for _ = 1 to 50 do
    let g = Dna.random_gene rng ~codons:20 in
    match Translate.translate g with
    | Ok p -> checki "protein length" 19 (String.length p + 0) |> ignore
    | Error e -> Alcotest.fail e
  done

let test_molecular_weight () =
  checkb "water only" true (abs_float (Translate.molecular_weight "" -. 18.02) < 1e-6);
  checkb "glycine adds 57" true
    (abs_float (Translate.molecular_weight "G" -. (18.02 +. 57.05)) < 1e-6);
  checkb "monotone" true
    (Translate.molecular_weight "MKW" > Translate.molecular_weight "MK")

let test_translate_procedure () =
  let p = Translate.procedure () in
  checkb "executable" true (Procedure.is_executable p);
  (match Procedure.run p [ Value.VDna "ATGAAATAA" ] with
  | Ok (Value.VProtein s) -> checks "MK" "MK" s
  | _ -> Alcotest.fail "translation through procedure failed");
  checkb "bad input" true (Result.is_error (Procedure.run p [ Value.VInt 3 ]));
  checkb "arity" true (Result.is_error (Procedure.run p []));
  let w = Translate.weight_procedure () in
  match Procedure.run w [ Value.VProtein "G" ] with
  | Ok (Value.VFloat f) -> checkb "weight" true (f > 70.0)
  | _ -> Alcotest.fail "weight procedure failed"

(* ---------------------------------------------------------------- blast *)

let test_blast_score () =
  checki "identical" 10 (Blast_like.score "AAAAA" "AAAAA");
  checki "empty" 0 (Blast_like.score "" "AAA");
  checkb "symmetric" true (Blast_like.score "ACGTAC" "TACGAT" = Blast_like.score "TACGAT" "ACGTAC");
  (* local: a shared substring scores even with different flanks *)
  checkb "local alignment found" true (Blast_like.score "XXXACGTXXX" "YYACGTYY" >= 8);
  checkb "no similarity" true (Blast_like.score "AAAA" "CCCC" = 0)

let test_blast_evalue () =
  (* more similar pairs get smaller E-values *)
  let similar = Blast_like.evalue "ACGTACGTAC" "ACGTACGTAC" in
  let dissimilar = Blast_like.evalue "ACGTACGTAC" "TTTTTTTTTT" in
  checkb "similar smaller" true (similar < dissimilar);
  let p = Blast_like.procedure () in
  (match Procedure.run p [ Value.VDna "ACGT"; Value.VDna "ACGT" ] with
  | Ok (Value.VFloat f) -> checkb "positive" true (f > 0.0)
  | _ -> Alcotest.fail "blast procedure failed");
  checkb "versioned" true (p.Procedure.version = "2.2.15")

(* ------------------------------------------------------------ secondary *)

let test_secondary_generation () =
  let rng = Prng.create 13 in
  let s = Secondary.random rng ~len:5000 ~mean_run:8.0 in
  checki "length" 5000 (String.length s);
  checkb "alphabet" true (String.for_all (fun c -> c = 'H' || c = 'E' || c = 'L') s);
  let mean = Secondary.mean_run_length s in
  checkb
    (Printf.sprintf "mean run %.2f near 8" mean)
    true
    (mean > 5.5 && mean < 10.5);
  let tight = Secondary.random rng ~len:5000 ~mean_run:1.5 in
  checkb "tight runs shorter" true (Secondary.mean_run_length tight < mean);
  (match Secondary.random rng ~len:10 ~mean_run:0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mean_run < 1 accepted");
  let hist = Secondary.run_histogram s in
  checki "three states" 3 (List.length hist);
  checki "histogram sums" 5000 (List.fold_left (fun acc (_, n) -> acc + n) 0 hist)

(* ------------------------------------------------------------- workload *)

let test_workload_determinism () =
  let a = Workload.genes (Prng.create 99) ~n:10 () in
  let b = Workload.genes (Prng.create 99) ~n:10 () in
  checkb "same seed same genes" true (a = b);
  let c = Workload.genes (Prng.create 100) ~n:10 () in
  checkb "different seed differs" true (a <> c)

let test_workload_identifiers_unique () =
  let keys = Workload.identifier_keys (Prng.create 3) ~n:5000 in
  checki "unique" 5000 (List.length (List.sort_uniq compare keys))

let test_workload_gene_shape () =
  let genes = Workload.genes (Prng.create 1) ~n:5 ~codons:12 () in
  List.iter
    (fun g ->
      checkb "gid shape" true (String.length g.Workload.gid = 6);
      checki "orf length" 36 (String.length g.Workload.gsequence);
      checkb "translates" true
        (Result.is_ok (Translate.translate g.Workload.gsequence)))
    genes;
  let prefixed = Workload.genes (Prng.create 1) ~n:3 ~id_prefix:"JX" () in
  checks "prefix" "JX0001" (List.hd prefixed).Workload.gid

let test_workload_points () =
  let pts = Workload.points_uniform (Prng.create 2) ~n:500 ~extent:10.0 in
  checki "count" 500 (Array.length pts);
  Array.iter
    (fun (x, y) -> checkb "in extent" true (x >= 0.0 && x <= 10.0 && y >= 0.0 && y <= 10.0))
    pts;
  let cl = Workload.points_clustered (Prng.create 2) ~n:500 ~extent:10.0 ~clusters:3 in
  Array.iter
    (fun (x, y) -> checkb "clustered in extent" true (x >= 0.0 && x <= 10.0 && y >= 0.0 && y <= 10.0))
    cl;
  match Workload.points_clustered (Prng.create 2) ~n:5 ~extent:1.0 ~clusters:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero clusters accepted"

let test_workload_annotation_mix () =
  let targets =
    Workload.annotation_mix (Prng.create 4) ~rows:100 ~cols:5 ~count:200 ~profile:`Mixed
  in
  checki "count" 200 (List.length targets);
  List.iter
    (fun t ->
      match t with
      | Workload.On_cell (r, c) -> checkb "cell in range" true (r < 100 && c < 5)
      | Workload.On_row r -> checkb "row in range" true (r < 100)
      | Workload.On_column c -> checkb "col in range" true (c < 5)
      | Workload.On_block (r0, r1, c0, c1) ->
          checkb "block in range" true (r0 <= r1 && c0 <= c1 && r1 < 100 && c1 < 5))
    targets;
  checkb "empty table" true
    (Workload.annotation_mix (Prng.create 4) ~rows:0 ~cols:5 ~count:10 ~profile:`Cells = [])

let bio_qcheck =
  let open QCheck in
  let dna_gen =
    make ~print:Print.string
      Gen.(string_size ~gen:(oneofl [ 'A'; 'C'; 'G'; 'T' ]) (int_bound 60))
  in
  [
    Test.make ~name:"reverse_complement is an involution" ~count:300 dna_gen (fun s ->
        Dna.reverse_complement (Dna.reverse_complement s) = s);
    Test.make ~name:"blast score is symmetric" ~count:200 (pair dna_gen dna_gen)
      (fun (a, b) -> Blast_like.score a b = Blast_like.score b a);
    Test.make ~name:"blast score bounded by 2*minlen" ~count:200 (pair dna_gen dna_gen)
      (fun (a, b) ->
        Blast_like.score a b <= 2 * min (String.length a) (String.length b));
    Test.make ~name:"generated ORFs always translate" ~count:100 (int_range 2 40)
      (fun codons ->
        let g = Dna.random_gene (Prng.create codons) ~codons in
        match Translate.translate g with
        | Ok p -> String.length p = codons - 1
        | Error _ -> false);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "bdbms_bio"
    [
      ( "dna",
        [
          Alcotest.test_case "basics" `Quick test_dna_basics;
          Alcotest.test_case "random gene" `Quick test_dna_random_gene;
          Alcotest.test_case "mutate" `Quick test_dna_mutate;
        ] );
      ( "translate",
        [
          Alcotest.test_case "codon table" `Quick test_codon_table;
          Alcotest.test_case "translate" `Quick test_translate;
          Alcotest.test_case "molecular weight" `Quick test_molecular_weight;
          Alcotest.test_case "as procedure" `Quick test_translate_procedure;
        ] );
      ( "blast",
        [
          Alcotest.test_case "score" `Quick test_blast_score;
          Alcotest.test_case "evalue" `Quick test_blast_evalue;
        ] );
      ("secondary", [ Alcotest.test_case "generation" `Quick test_secondary_generation ]);
      ( "workload",
        [
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "unique identifiers" `Quick test_workload_identifiers_unique;
          Alcotest.test_case "gene shape" `Quick test_workload_gene_shape;
          Alcotest.test_case "points" `Quick test_workload_points;
          Alcotest.test_case "annotation mix" `Quick test_workload_annotation_mix;
        ] );
      ("bio-properties", q bio_qcheck);
    ]

(* Local dependency tracking (Section 5, Figures 1, 9, 10):

   Gene.GSequence --(prediction tool P: executable)--> Protein.PSequence
   Protein.PSequence --(lab experiment: NOT executable)--> Protein.PFunction
   (Gene1, Gene2)   --(BLAST-2.2.15: executable)-------> GeneMatching.Evalue

   Editing a gene sequence re-runs the real genetic-code translation to
   refresh the protein sequence, marks the lab-derived function outdated
   (Figure 10's bitmap), and outdated cells arrive annotated in query
   answers.  Upgrading BLAST re-evaluates every E-value automatically.

   Run with: dune exec examples/dependency_lab.exe *)

open Bdbms
module Translate = Bdbms_bio.Translate
module Dna = Bdbms_bio.Dna
module Prng = Bdbms_util.Prng

let show db sql = Printf.printf "asql> %s\n%s\n\n" sql (Db.render_exn db sql)

let () =
  print_endline "=== bdbms dependency lab: procedural dependencies ===\n"

(* "LabExperiment" is deliberately NOT a built-in procedure: the paper's
   point is that such derivations are not executable by the database.  We
   register it as a non-executable procedure, so the tracker can only mark
   its targets outdated. *)
let () =
  let db = Db.create () in
  let rng = Prng.create 2007 in
  let gene1 = Dna.random_gene rng ~codons:8 in
  let gene2 = Dna.random_gene rng ~codons:8 in
  let protein1 =
    match Translate.translate gene1 with Ok p -> p | Error e -> failwith e
  in
  ignore
    (Bdbms_asql.Context.register_procedure (Db.context db)
       (Bdbms_dependency.Procedure.non_executable ~name:"LabExperiment"
          ~description:"protein function assay" ()));
  (match
     Db.exec_script db
       (Printf.sprintf
          {|
          CREATE TABLE Gene (GID TEXT, GSequence DNA);
          CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence PROTEIN, PFunction TEXT);
          CREATE TABLE GeneMatching (Gene1 TEXT, Gene2 TEXT, Evalue FLOAT);
          INSERT INTO Gene VALUES ('JW0080', '%s'), ('JW0055', '%s');
          INSERT INTO Protein VALUES ('mraW', 'JW0080', '%s', 'Exhibitor');
          INSERT INTO GeneMatching VALUES ('%s', '%s', 0.0);
          CREATE DEPENDENCY r1 FROM Gene.GSequence TO Protein.PSequence USING P;
          CREATE DEPENDENCY r2 FROM Protein.PSequence TO Protein.PFunction USING LabExperiment;
          CREATE DEPENDENCY r3 FROM GeneMatching.Gene1, GeneMatching.Gene2 TO GeneMatching.Evalue USING BLAST;
          LINK DEPENDENCY r1 FROM (0) TO 0;
          LINK DEPENDENCY r2 FROM (0) TO 0;
          LINK DEPENDENCY r3 FROM (0, 0) TO 0;
          |}
          gene1 gene2 protein1 gene1 gene2)
   with
  | Ok _ -> ()
  | Error e -> failwith e);

  print_endline "--- rules, including the derived rule 4 (non-executable chain) ---\n";
  show db "SHOW DEPENDENCIES";

  print_endline "--- before: protein derived from the gene ---\n";
  show db "SELECT PName, PSequence, PFunction FROM Protein";

  print_endline "--- a curator edits the gene sequence ---\n";
  let gene1' = Dna.random_gene rng ~codons:8 in
  show db (Printf.sprintf "UPDATE Gene SET GSequence = '%s' WHERE GID = 'JW0080'" gene1');

  print_endline
    "--- PSequence was RE-DERIVED by tool P; PFunction is marked outdated and\n\
    \    arrives annotated (Section 5's reporting requirement) ---\n";
  show db "SELECT PName, PSequence, PFunction FROM Protein";
  show db "SHOW OUTDATED Protein";

  print_endline "--- the lab re-runs the assay and validates the value ---\n";
  show db "VALIDATE Protein ROW 0 COLUMN PFunction";
  show db "SHOW OUTDATED Protein";

  print_endline "--- figure 9b: upgrading BLAST re-evaluates every E-value ---\n";
  show db "SELECT Gene1, Gene2, Evalue FROM GeneMatching" |> ignore;
  let registry =
    Bdbms_dependency.Tracker.registry (Db.context db).Bdbms_asql.Context.tracker
  in
  (match Bdbms_dependency.Procedure.Registry.find registry "BLAST" with
  | Some blast ->
      Bdbms_dependency.Procedure.set_version blast "2.3.0";
      let report =
        Bdbms_dependency.Tracker.on_procedure_change
          (Db.context db).Bdbms_asql.Context.tracker "BLAST"
      in
      Printf.printf "BLAST upgraded to 2.3.0: %d value(s) re-evaluated\n\n"
        (List.length report.Bdbms_dependency.Tracker.recomputed)
  | None -> failwith "BLAST not registered");
  show db "SELECT Gene1, Gene2, Evalue FROM GeneMatching";

  print_endline "dependency lab complete."

examples/structure_search.mli:

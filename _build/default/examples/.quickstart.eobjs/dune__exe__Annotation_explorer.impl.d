examples/annotation_explorer.ml: Bdbms Bdbms_annotation Bdbms_bio Bdbms_storage Bdbms_util Db List Printf

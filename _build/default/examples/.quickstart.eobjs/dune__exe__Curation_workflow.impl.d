examples/curation_workflow.ml: Bdbms Bdbms_annotation Bdbms_asql Bdbms_provenance Bdbms_relation Db List Printf

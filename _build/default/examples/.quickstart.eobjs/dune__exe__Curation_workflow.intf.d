examples/curation_workflow.mli:

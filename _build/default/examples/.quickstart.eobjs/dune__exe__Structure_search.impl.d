examples/structure_search.ml: Array Bdbms_bio Bdbms_index Bdbms_spgist Bdbms_storage Bdbms_util Float List Printf String

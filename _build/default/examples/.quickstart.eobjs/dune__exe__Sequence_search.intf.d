examples/sequence_search.mli:

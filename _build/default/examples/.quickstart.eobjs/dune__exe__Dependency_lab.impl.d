examples/dependency_lab.ml: Bdbms Bdbms_asql Bdbms_bio Bdbms_dependency Bdbms_util Db List Printf

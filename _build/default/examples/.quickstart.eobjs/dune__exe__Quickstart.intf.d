examples/quickstart.mli:

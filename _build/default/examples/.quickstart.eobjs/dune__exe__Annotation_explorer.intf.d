examples/annotation_explorer.mli:

examples/quickstart.ml: Bdbms Db Printf

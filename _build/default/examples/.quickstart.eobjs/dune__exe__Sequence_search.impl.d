examples/sequence_search.ml: Array Bdbms_bio Bdbms_sbc Bdbms_storage Bdbms_util List Printf String

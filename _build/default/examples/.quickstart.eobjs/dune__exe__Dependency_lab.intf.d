examples/dependency_lab.mli:

(* Quickstart: the paper's running example (Figures 2-3) in a dozen A-SQL
   statements — two gene tables, multi-granularity annotations, and the
   single annotated INTERSECT that Section 3 motivates.

   Run with: dune exec examples/quickstart.exe *)

open Bdbms

let show db sql =
  Printf.printf "asql> %s\n%s\n\n" sql (Db.render_exn db sql)

let () =
  let db = Db.create () in
  print_endline "=== bdbms quickstart: annotations as first-class objects ===\n";

  (* the two gene tables of Figure 2 *)
  (match
     Db.exec_script db
       {|
       CREATE TABLE DB1_Gene (GID TEXT, GName TEXT, GSequence DNA);
       CREATE TABLE DB2_Gene (GID TEXT, GName TEXT, GSequence DNA);
       INSERT INTO DB1_Gene VALUES
         ('JW0080', 'mraW', 'ATGATGGAAAA'),
         ('JW0082', 'ftsI', 'ATGAAAGCAGC'),
         ('JW0055', 'yabP', 'ATGAAAGTATC'),
         ('JW0078', 'fruR', 'GTGAAACTGGA');
       INSERT INTO DB2_Gene VALUES
         ('JW0080', 'mraW', 'ATGATGGAAAA'),
         ('JW0041', 'fixB', 'ATGAACACGTT'),
         ('JW0037', 'caiB', 'ATGGATCATCT'),
         ('JW0027', 'ispH', 'ATGCAGATCCT'),
         ('JW0055', 'yabP', 'ATGAAAGTATC');
       CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene;
       CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene;
       |}
   with
  | Ok _ -> ()
  | Error e -> failwith e);

  (* annotations A2, B3, B5 of Figure 2, at three granularities *)
  show db
    "ADD ANNOTATION TO DB1_Gene.GAnnotation VALUE 'These genes were obtained from RegulonDB' ON (SELECT * FROM DB1_Gene)";
  show db
    "ADD ANNOTATION TO DB2_Gene.GAnnotation VALUE 'obtained from GenoBase' ON (SELECT GSequence FROM DB2_Gene)";
  show db
    "ADD ANNOTATION TO DB2_Gene.GAnnotation VALUE 'This gene has an unknown function' ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080')";

  print_endline "--- annotations propagate with query answers ---\n";
  show db
    "SELECT GID, GSequence FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'";

  print_endline
    "--- the paper's 3-statement workaround becomes ONE annotated INTERSECT ---\n";
  show db
    "SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) INTERSECT SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)";

  print_endline "--- AWHERE: query the data BY its annotations ---\n";
  show db
    "SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) AWHERE ANN CONTAINS 'unknown function'";

  print_endline "--- archival: B5 becomes obsolete, stops propagating ---\n";
  show db
    "ARCHIVE ANNOTATION FROM DB2_Gene.GAnnotation ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080')";
  show db "SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'";
  show db
    "RESTORE ANNOTATION FROM DB2_Gene.GAnnotation ON (SELECT * FROM DB2_Gene WHERE GID = 'JW0080')";
  show db "SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'";

  print_endline "quickstart complete."

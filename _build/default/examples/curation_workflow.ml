(* Community curation workflow (Sections 4 and 6):

   - lab members insert and update freely; content-based approval logs
     everything with generated inverse statements;
   - the lab administrator reviews the log, approving or disapproving;
   - disapproval executes the inverse statement;
   - provenance is system-maintained and queryable ("what is the source of
     this value at time T?", Figure 8).

   Run with: dune exec examples/curation_workflow.exe *)

open Bdbms
module Prov_record = Bdbms_provenance.Prov_record
module Prov_store = Bdbms_provenance.Prov_store
module Region = Bdbms_annotation.Region
module Context = Bdbms_asql.Context
module Catalog = Bdbms_relation.Catalog

let show ?user db sql = Printf.printf "asql> %s\n%s\n\n" sql (Db.render_exn ?user db sql)

let () =
  let db = Db.create () in
  let ctx = Db.context db in
  print_endline "=== bdbms curation workflow: content-based approval + provenance ===\n";

  (match
     Db.exec_script db
       {|
       CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence DNA);
       CREATE USER alice;
       CREATE USER bob;
       CREATE GROUP lab_members;
       ADD USER alice TO GROUP lab_members;
       ADD USER bob TO GROUP lab_members;
       GRANT SELECT ON Gene TO GROUP lab_members;
       GRANT INSERT ON Gene TO GROUP lab_members;
       GRANT UPDATE ON Gene TO GROUP lab_members;
       INSERT INTO Gene VALUES ('JW0080', 'mraW', 'ATGATGGAAAAA');
       |}
   with
  | Ok _ -> ()
  | Error e -> failwith e);

  (* imported data gets system provenance (only the system/integration
     tools may write provenance; end-users are rejected) *)
  let gene_table = Catalog.find_exn ctx.Context.catalog "Gene" in
  Prov_store.register_tool ctx.Context.prov "regulon_loader";
  (match
     Prov_store.record ctx.Context.prov ~table:gene_table ~region:Region.Whole_table
       ~record:
         (Prov_record.make
            ~operation:(Prov_record.Copied_from { db = "RegulonDB"; table = "genes" })
            ~actor:"regulon_loader" ~at:5)
   with
  | Ok _ -> print_endline "provenance: initial import recorded by regulon_loader\n"
  | Error e -> failwith e);
  (match
     Prov_store.record ctx.Context.prov ~table:gene_table ~region:Region.Whole_table
       ~record:
         (Prov_record.make ~operation:Prov_record.Local_insert ~actor:"alice" ~at:6)
   with
  | Ok _ -> print_endline "BUG: end-user wrote provenance"
  | Error e -> Printf.printf "as expected, end-users cannot write provenance:\n  %s\n\n" e);

  print_endline "--- content approval goes ON for the sequence column ---\n";
  show db "START CONTENT APPROVAL ON Gene COLUMNS (GSequence) APPROVED BY admin";

  (* lab members work freely; everything lands in the log *)
  show ~user:"alice" db "UPDATE Gene SET GSequence = 'ATGCCCGGGAAA' WHERE GID = 'JW0080'";
  show ~user:"bob" db "UPDATE Gene SET GSequence = 'ATGTTTTTTTTT' WHERE GID = 'JW0080'";

  print_endline "--- pending operations with their generated inverse statements ---\n";
  show db "SHOW PENDING";

  print_endline "--- the administrator approves alice's change, rejects bob's ---\n";
  show db "APPROVE 1";
  show db "DISAPPROVE 2";

  print_endline "--- bob's change was undone by its inverse statement ---\n";
  show db "SELECT GID, GSequence FROM Gene";

  (* query provenance: what was the source of this value at time T? *)
  print_endline "--- figure 8: the source of the sequence cell over time ---";
  [ 4; 10 ]
  |> List.iter (fun at ->
         match
           Prov_store.source_at ctx.Context.prov ~table_name:"Gene" ~row:0 ~col:2 ~at
         with
         | Some r -> Printf.printf "  at t%d: %s\n" at (Prov_record.describe r)
         | None -> Printf.printf "  at t%d: no recorded source\n" at);

  print_endline "\ncuration workflow complete."

(* E10 — Compression formats beyond RLE (paper Section 7.2, future work:
   "Compression techniques like gzip and Burrows-Wheeler Transform (BWT)
   can be more effective in compressing the other kinds of data").

   Compression ratios of plain RLE vs the BWT→MTF→RLE pipeline across the
   data kinds bdbms stores.  Expected shape: RLE wins where characters
   repeat in tandem (secondary structures — exactly where the SBC-tree
   operates); BWT wins on DNA and protein primary sequences, whose
   structure is contextual rather than run-based — confirming the paper's
   motivation for supporting multiple formats. *)

module Prng = Bdbms_util.Prng
module Rle = Bdbms_util.Rle
module Bwt = Bdbms_util.Bwt
module Dna = Bdbms_bio.Dna
module Secondary = Bdbms_bio.Secondary
module Translate = Bdbms_bio.Translate
open Bench_util

(* textual-RLE bytes, same convention as Rle.encoded_size_bytes *)
let rle_ratio s =
  let enc = Rle.encoded_size_bytes (Rle.encode s) in
  float_of_int (String.length s) /. float_of_int (max 1 enc)

let avg f inputs =
  List.fold_left (fun acc s -> acc +. f s) 0.0 inputs /. float_of_int (List.length inputs)

let run () =
  let rng = Prng.create 107 in
  let structures = Bdbms_bio.Workload.structures rng ~n:10 ~len:800 ~mean_run:8.0 in
  let tight_structures = Bdbms_bio.Workload.structures rng ~n:10 ~len:800 ~mean_run:2.0 in
  let dna = List.init 10 (fun _ -> Dna.random rng ~len:800) in
  let genes = List.init 10 (fun _ -> Dna.random_gene rng ~codons:260) in
  let proteins =
    List.filter_map (fun g -> Result.to_option (Translate.translate g)) genes
  in
  let verify inputs =
    List.for_all (fun s -> Bwt.decompress (Bwt.compress s) = Ok s) inputs
  in
  assert (verify structures && verify dna && verify proteins);
  let rows =
    List.map
      (fun (name, inputs) ->
        [
          name;
          fmt_i (List.fold_left (fun acc s -> acc + String.length s) 0 inputs);
          fmt_f (avg rle_ratio inputs);
          fmt_f (avg Bwt.ratio inputs);
          (if avg rle_ratio inputs > avg Bwt.ratio inputs then "RLE" else "BWT");
        ])
      [
        ("secondary structure r=8", structures);
        ("secondary structure r=2", tight_structures);
        ("random DNA", dna);
        ("protein (translated ORF)", proteins);
      ]
  in
  print_table
    ~title:
      "E10. Compression formats (Sec 7.2 future work): RLE vs BWT+MTF+RLE pipeline"
    ~headers:[ "data kind"; "total chars"; "RLE ratio"; "BWT ratio"; "winner" ]
    ~rows

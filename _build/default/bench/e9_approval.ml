(* E9 — Content-based approval overhead (paper Section 6, Figure 11).

   Update throughput with approval OFF vs ON (every operation logged with
   a generated inverse statement), and the cost/correctness of a
   disapprove-everything rollback.  Expected shape: a modest constant
   per-operation logging overhead; rollback restores the exact prior
   state. *)

module Prng = Bdbms_util.Prng
module Value = Bdbms_relation.Value
module Tuple = Bdbms_relation.Tuple
module Dna = Bdbms_bio.Dna
open Bdbms
open Bench_util

let setup ~with_approval =
  let db = Db.create () in
  ignore (Db.exec_exn db "CREATE TABLE Gene (GID TEXT, GSequence DNA)");
  ignore (Db.exec_exn db "CREATE USER alice");
  if with_approval then
    ignore (Db.exec_exn db "START CONTENT APPROVAL ON Gene APPROVED BY admin");
  let rng = Prng.create 89 in
  for i = 0 to 499 do
    ignore
      (Db.exec_exn db
         (Printf.sprintf "INSERT INTO Gene VALUES ('JW%04d', '%s')" i
            (Dna.random_gene rng ~codons:6)))
  done;
  (db, rng)

let run_updates db rng ~n =
  for _ = 1 to n do
    let i = Prng.int rng 500 in
    ignore
      (Db.exec_exn db ~user:"alice"
         (Printf.sprintf "UPDATE Gene SET GSequence = '%s' WHERE GID = 'JW%04d'"
            (Dna.random_gene rng ~codons:6) i))
  done

let run () =
  let n = 300 in
  let rows_out =
    List.map
      (fun with_approval ->
        let db, rng = setup ~with_approval in
        (* approval ON was started before the seed inserts, so drain the log
           noise by approving nothing: pending count includes the 500
           inserts; count only the update entries below *)
        let before_pending =
          match Db.exec_exn db "SHOW PENDING" with
          | Bdbms_asql.Executor.Entries es -> List.length es
          | _ -> 0
        in
        let (), us = time_us (fun () -> run_updates db rng ~n) in
        let after_pending =
          match Db.exec_exn db "SHOW PENDING" with
          | Bdbms_asql.Executor.Entries es -> List.length es
          | _ -> 0
        in
        [
          (if with_approval then "ON" else "OFF");
          fmt_i n;
          fmt_f (us /. float_of_int n /. 1000.0);
          fmt_f1 (float_of_int n /. (us /. 1e6));
          fmt_i (after_pending - before_pending);
        ])
      [ false; true ]
  in
  print_table
    ~title:"E9a. Update throughput with content approval OFF vs ON (300 updates)"
    ~headers:[ "approval"; "updates"; "ms/update"; "updates/s"; "log entries added" ]
    ~rows:rows_out;

  (* rollback correctness + cost: snapshot, update all, disapprove all *)
  let db, rng = setup ~with_approval:false in
  ignore (Db.exec_exn db "START CONTENT APPROVAL ON Gene APPROVED BY admin");
  let ctx = Db.context db in
  let gene = Bdbms_relation.Catalog.find_exn ctx.Bdbms_asql.Context.catalog "Gene" in
  let snapshot = Bdbms_relation.Table.to_list gene in
  run_updates db rng ~n:200;
  let pending =
    match Db.exec_exn db "SHOW PENDING" with
    | Bdbms_asql.Executor.Entries es -> es
    | _ -> []
  in
  let (), us =
    time_us (fun () ->
        List.iter
          (fun (e : Bdbms_auth.Approval.entry) ->
            ignore (Db.exec_exn db (Printf.sprintf "DISAPPROVE %d" e.Bdbms_auth.Approval.id)))
          (List.rev pending))
  in
  let restored = Bdbms_relation.Table.to_list gene in
  let identical =
    List.length snapshot = List.length restored
    && List.for_all2
         (fun (r1, t1) (r2, t2) -> r1 = r2 && Tuple.equal t1 t2)
         snapshot restored
  in
  print_table
    ~title:"E9b. Disapprove-all rollback: inverse statements restore the exact prior state"
    ~headers:[ "updates rolled back"; "ms total"; "ms/rollback"; "state restored" ]
    ~rows:
      [
        [
          fmt_i (List.length pending);
          fmt_f (us /. 1000.0);
          fmt_f (us /. float_of_int (max 1 (List.length pending)) /. 1000.0);
          (if identical then "yes" else "NO");
        ];
      ]

let _ = Value.VNull

(* E7 — Space-partitioning trees vs the R-tree (paper Section 7.1: kd-tree
   and quadtree through SP-GiST against the R-tree baseline, point queries
   and k-nearest-neighbour on point data).

   Uniform and clustered 2-D point sets (clustered approximates
   protein-contact-map density).  Expected shape: the space-partitioning
   indexes beat the R-tree on point data — disjoint partitions mean a
   point query follows one path while R-tree MBRs overlap. *)

module Prng = Bdbms_util.Prng
module Workload = Bdbms_bio.Workload
module Kd_tree = Bdbms_spgist.Kd_tree
module Quadtree = Bdbms_spgist.Quadtree
module Rtree = Bdbms_index.Rtree
open Bench_util

let extent = 100.0

let build pts =
  let disk_k, bp_k = mk_pool () in
  let disk_q, bp_q = mk_pool () in
  let disk_r, bp_r = mk_pool () in
  let kd = Kd_tree.create ~dims:2 bp_k in
  let quad = Quadtree.create ~world:(0.0, 0.0, extent, extent) bp_q in
  let rt = Rtree.create bp_r in
  Array.iteri (fun i (x, y) -> Kd_tree.insert kd [| x; y |] i) pts;
  Array.iteri (fun i (x, y) -> Quadtree.insert quad { Quadtree.x; y } i) pts;
  Array.iteri (fun i (x, y) -> Rtree.insert rt (Rtree.mbr_of_point ~x ~y) i) pts;
  ((disk_k, kd), (disk_q, quad), (disk_r, rt))

let avg l = List.fold_left ( + ) 0 l / max 1 (List.length l)

let run () =
  let rows_out =
    List.concat_map
      (fun (dist_name, pts_fn) ->
        List.concat_map
          (fun n ->
            let pts : (float * float) array = pts_fn n in
            let (disk_k, kd), (disk_q, quad), (disk_r, rt) = build pts in
            let rng = Prng.create 61 in
            let probes = List.init 300 (fun _ -> pts.(Prng.int rng n)) in
            (* point queries *)
            let kd_pq =
              List.map
                (fun (x, y) ->
                  snd (measure_accesses disk_k (fun () -> Kd_tree.point_query kd [| x; y |])))
                probes
            in
            let quad_pq =
              List.map
                (fun (x, y) ->
                  snd
                    (measure_accesses disk_q (fun () ->
                         Quadtree.point_query quad { Quadtree.x; y })))
                probes
            in
            let rt_pq =
              List.map
                (fun (x, y) ->
                  snd (measure_accesses disk_r (fun () -> Rtree.search_point rt ~x ~y)))
                probes
            in
            (* kNN k=10 *)
            let knn_probes = List.init 100 (fun _ -> pts.(Prng.int rng n)) in
            let kd_knn =
              List.map
                (fun (x, y) ->
                  snd
                    (measure_accesses disk_k (fun () -> Kd_tree.nearest kd [| x; y |] ~k:10)))
                knn_probes
            in
            let quad_knn =
              List.map
                (fun (x, y) ->
                  snd
                    (measure_accesses disk_q (fun () ->
                         Quadtree.nearest quad { Quadtree.x; y } ~k:10)))
                knn_probes
            in
            let rt_knn =
              List.map
                (fun (x, y) ->
                  snd (measure_accesses disk_r (fun () -> Rtree.nearest rt ~x ~y ~k:10)))
                knn_probes
            in
            [
              [
                dist_name; fmt_i n; "point query"; fmt_i (avg kd_pq); fmt_i (avg quad_pq);
                fmt_i (avg rt_pq);
              ];
              [
                dist_name; fmt_i n; "kNN k=10"; fmt_i (avg kd_knn); fmt_i (avg quad_knn);
                fmt_i (avg rt_knn);
              ];
            ])
          [ 2000; 10000 ])
      [
        ("uniform", fun n -> Workload.points_uniform (Prng.create 67) ~n ~extent);
        ( "clustered",
          fun n -> Workload.points_clustered (Prng.create 71) ~n ~extent ~clusters:8 );
      ]
  in
  print_table
    ~title:
      "E7. SP-GiST kd-tree & PR-quadtree vs R-tree: page accesses per query, 2-D points"
    ~headers:[ "data"; "points"; "operation"; "kd acc/q"; "quad acc/q"; "R-tree acc/q" ]
    ~rows:rows_out

(* E6 — SP-GiST trie vs B+-tree (paper Section 7.1, citing the SP-GiST
   experiments: space-partitioning trees beat the B+-tree on exact-match,
   prefix and regular-expression search over string keys).

   Gene-identifier keys; the B+-tree answers regex queries the only way it
   can — scan every key and test — while the trie prunes subtrees whose
   path cannot extend to a match.  Expected shape: trie wins regex by a
   wide margin, wins or ties prefix, stays comparable on exact match. *)

module Prng = Bdbms_util.Prng
module Workload = Bdbms_bio.Workload
module Trie = Bdbms_spgist.Trie
module Regex_lite = Bdbms_spgist.Regex_lite
module Btree = Bdbms_index.Btree
open Bench_util

let build n ~seed =
  let keys = Workload.identifier_keys (Prng.create seed) ~n in
  let disk_t, bp_t = mk_pool () in
  let disk_b, bp_b = mk_pool () in
  let trie = Trie.create bp_t in
  let btree = Btree.create bp_b in
  List.iteri (fun i k -> Trie.insert trie k i) keys;
  List.iteri (fun i k -> Btree.insert btree ~key:k ~value:i) keys;
  (keys, disk_t, trie, disk_b, btree)

(* B+-tree regex baseline: full range scan + match test *)
let btree_regex btree re =
  Btree.range btree () |> List.filter (fun (k, _) -> Regex_lite.matches re k)

let avg l = List.fold_left ( + ) 0 l / max 1 (List.length l)

let run () =
  let rows_out =
    List.concat_map
      (fun n ->
        let keys, disk_t, trie, disk_b, btree = build n ~seed:53 in
        let rng = Prng.create 59 in
        let keys_arr = Array.of_list keys in
        (* exact-match probes: half present, half absent *)
        let exact_probes =
          List.init 200 (fun i ->
              if i mod 2 = 0 then keys_arr.(Prng.int rng n)
              else keys_arr.(Prng.int rng n) ^ "x")
        in
        let trie_exact =
          List.map
            (fun k -> snd (measure_accesses disk_t (fun () -> Trie.exact trie k)))
            exact_probes
        in
        let btree_exact =
          List.map
            (fun k -> snd (measure_accesses disk_b (fun () -> Btree.search btree k)))
            exact_probes
        in
        (* prefix probes: 4-character prefixes of real keys *)
        let prefix_probes =
          List.init 100 (fun _ ->
              String.sub keys_arr.(Prng.int rng n) 0 4)
        in
        let trie_prefix =
          List.map
            (fun p -> snd (measure_accesses disk_t (fun () -> Trie.prefix trie p)))
            prefix_probes
        in
        let btree_prefix =
          List.map
            (fun p ->
              snd (measure_accesses disk_b (fun () -> Btree.prefix_search btree p)))
            prefix_probes
        in
        (* regex probes *)
        let regexes =
          List.filter_map
            (fun p -> Result.to_option (Regex_lite.compile p))
            [ "mra[A-M]0[0-9]+"; "(ftsQ|fruZ)[0-9]+"; "dna.00[0-9]+" ]
        in
        let check_regex re =
          let t_res, t_io = measure_accesses disk_t (fun () -> Trie.search trie (Trie.Regex re)) in
          let b_res, b_io = measure_accesses disk_b (fun () -> btree_regex btree re) in
          assert (List.length t_res = List.length b_res);
          (t_io, b_io)
        in
        let regex_costs = List.map check_regex regexes in
        let trie_regex = avg (List.map fst regex_costs) in
        let btree_regex_cost = avg (List.map snd regex_costs) in
        [
          [
            fmt_i n; "exact"; fmt_i (avg trie_exact); fmt_i (avg btree_exact);
            fmt_f1 (float_of_int (avg btree_exact) /. float_of_int (max 1 (avg trie_exact)));
          ];
          [
            fmt_i n; "prefix"; fmt_i (avg trie_prefix); fmt_i (avg btree_prefix);
            fmt_f1 (float_of_int (avg btree_prefix) /. float_of_int (max 1 (avg trie_prefix)));
          ];
          [
            fmt_i n; "regex"; fmt_i trie_regex; fmt_i btree_regex_cost;
            fmt_f1 (float_of_int btree_regex_cost /. float_of_int (max 1 trie_regex));
          ];
        ])
      [ 2000; 10000 ]
  in
  print_table
    ~title:"E6. SP-GiST trie vs B+-tree: page accesses per query over identifier keys"
    ~headers:[ "keys"; "operation"; "trie acc/q"; "B+-tree acc/q"; "B+/trie" ]
    ~rows:rows_out

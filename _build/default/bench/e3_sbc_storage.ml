(* E3 — SBC-tree storage (paper Section 7.2: "up to an order of magnitude
   reduction in storage").

   The SBC-tree stores RLE run records and one suffix entry per run; the
   String B-tree stores the raw text and one suffix entry per character.
   Sweeping the mean run length r shows the reduction growing with
   compressibility and crossing ~10x at the run lengths typical of
   protein secondary structures (Figure 12). *)

module Prng = Bdbms_util.Prng
module Workload = Bdbms_bio.Workload
module Sbc_tree = Bdbms_sbc.Sbc_tree
module String_btree = Bdbms_sbc.String_btree
open Bench_util

let corpus ~mean_run ~seed = Workload.structures (Prng.create seed) ~n:30 ~len:600 ~mean_run

let build_both texts =
  let disk_sbc, bp_sbc = mk_pool () in
  let disk_str, bp_str = mk_pool () in
  let sbc = Sbc_tree.create ~with_three_sided:false bp_sbc in
  let strb = String_btree.create bp_str in
  let _, sbc_io =
    measure_accesses disk_sbc (fun () ->
        List.iter (fun s -> ignore (Sbc_tree.insert sbc s)) texts)
  in
  let _, str_io =
    measure_accesses disk_str (fun () ->
        List.iter (fun s -> ignore (String_btree.insert strb s)) texts)
  in
  (sbc, strb, sbc_io, str_io)

let run () =
  let rows_out =
    List.map
      (fun mean_run ->
        let texts = corpus ~mean_run ~seed:31 in
        let sbc, strb, _, _ = build_both texts in
        let sbc_pages = Sbc_tree.total_pages sbc in
        let str_pages = String_btree.total_pages strb in
        [
          fmt_f1 mean_run;
          fmt_i (Sbc_tree.entry_count sbc);
          fmt_i (String_btree.entry_count strb);
          fmt_i sbc_pages;
          fmt_i str_pages;
          fmt_f1 (float_of_int str_pages /. float_of_int (max 1 sbc_pages));
        ])
      [ 1.2; 2.0; 4.0; 8.0; 16.0; 32.0 ]
  in
  print_table
    ~title:
      "E3. SBC-tree vs String B-tree storage (30 seqs x 600 chars; paper claim: ~10x reduction)"
    ~headers:
      [
        "mean run"; "SBC entries"; "StrB entries"; "SBC pages"; "StrB pages";
        "reduction x";
      ]
    ~rows:rows_out

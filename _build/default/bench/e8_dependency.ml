(* E8 — Dependency tracking overheads (paper Section 5, Figure 10).

   (a) Outdated-bitmap storage: raw bitmap vs the paper's proposed
       RLE-compressed form, for clustered vs scattered outdated cells
       (clustered marks — the common case when one gene's subtree goes
       stale — compress very well).
   (b) Invalidation cascade throughput: updates/second through the
       gene → protein (executable re-derivation) → function (mark) chains
       at several batch sizes. *)

module Prng = Bdbms_util.Prng
module Value = Bdbms_relation.Value
module Schema = Bdbms_relation.Schema
module Tuple = Bdbms_relation.Tuple
module Table = Bdbms_relation.Table
module Catalog = Bdbms_relation.Catalog
module Bitmap = Bdbms_util.Bitmap
module Tracker = Bdbms_dependency.Tracker
module Rule = Bdbms_dependency.Rule
module Translate = Bdbms_bio.Translate
module Procedure = Bdbms_dependency.Procedure
module Dna = Bdbms_bio.Dna
open Bench_util

let bitmap_rows () =
  let mk rows cols fill_fn =
    let b = Bitmap.create ~rows ~cols in
    fill_fn b;
    (Bitmap.raw_size_bytes b, Bitmap.compressed_size_bytes b, Bitmap.count_set b)
  in
  List.map
    (fun (name, rows, fill) ->
      let raw, compressed, set = mk rows 8 fill in
      [
        name; fmt_i (rows * 8); fmt_i set; fmt_i raw; fmt_i compressed;
        fmt_f1 (float_of_int raw /. float_of_int compressed);
      ])
    [
      ( "clustered 5%", 20000,
        fun b ->
          for row = 9500 to 10499 do
            Bitmap.set_row b ~row true
          done );
      ( "scattered 5%", 20000,
        fun b ->
          let rng = Prng.create 73 in
          for _ = 1 to 8000 do
            Bitmap.set b ~row:(Prng.int rng 20000) ~col:(Prng.int rng 8) true
          done );
      ("all clean", 20000, fun _ -> ());
      ( "one column", 20000,
        fun b -> Bitmap.set_col b ~col:3 true );
    ]

(* gene -> protein chains *)
let build_chains n =
  let _, bp = mk_pool ~page_size:4096 ~capacity:8192 () in
  let catalog = Catalog.create bp in
  let gene =
    Result.get_ok
      (Catalog.create_table catalog ~name:"Gene"
         (Schema.make
            [
              { Schema.name = "GID"; ty = Value.TString };
              { Schema.name = "GSequence"; ty = Value.TDna };
            ]))
  in
  let protein =
    Result.get_ok
      (Catalog.create_table catalog ~name:"Protein"
         (Schema.make
            [
              { Schema.name = "GID"; ty = Value.TString };
              { Schema.name = "PSequence"; ty = Value.TProtein };
              { Schema.name = "PFunction"; ty = Value.TString };
            ]))
  in
  let tracker = Tracker.create catalog in
  let p = Translate.procedure () in
  let lab = Procedure.non_executable ~name:"Lab" () in
  ignore
    (Tracker.add_rule tracker
       (Rule.make ~id:"r1"
          ~sources:[ Rule.attr "Gene" "GSequence" ]
          ~target:(Rule.attr "Protein" "PSequence") p));
  ignore
    (Tracker.add_rule tracker
       (Rule.make ~id:"r2"
          ~sources:[ Rule.attr "Protein" "PSequence" ]
          ~target:(Rule.attr "Protein" "PFunction") lab));
  let rng = Prng.create 79 in
  for i = 0 to n - 1 do
    let dna = Dna.random_gene rng ~codons:12 in
    let prot = Result.get_ok (Translate.translate dna) in
    let g =
      Result.get_ok
        (Table.insert gene
           (Tuple.make [ Value.VString (Printf.sprintf "JW%04d" i); Value.VDna dna ]))
    in
    let pr =
      Result.get_ok
        (Table.insert protein
           (Tuple.make
              [
                Value.VString (Printf.sprintf "JW%04d" i); Value.VProtein prot;
                Value.VString "assayed";
              ]))
    in
    ignore (Tracker.link_rows tracker ~rule_id:"r1" ~source_rows:[ g ] ~target_row:pr);
    ignore (Tracker.link_rows tracker ~rule_id:"r2" ~source_rows:[ pr ] ~target_row:pr)
  done;
  (gene, tracker)

let cascade_rows () =
  List.map
    (fun (n, batch) ->
      let gene, tracker = build_chains n in
      let rng = Prng.create 83 in
      let reports, us =
        time_us (fun () ->
            List.init batch (fun _ ->
                let row = Prng.int rng n in
                let dna = Dna.random_gene rng ~codons:12 in
                ignore (Table.update_cell gene ~row ~col:1 (Value.VDna dna));
                Tracker.on_cell_update tracker ~table:"Gene" ~row ~col:1))
      in
      let recomputed =
        List.fold_left (fun acc r -> acc + List.length r.Tracker.recomputed) 0 reports
      in
      let marked =
        List.fold_left (fun acc r -> acc + List.length r.Tracker.marked) 0 reports
      in
      [
        fmt_i n; fmt_i batch; fmt_i recomputed; fmt_i marked;
        fmt_f (us /. float_of_int batch /. 1000.0);
        fmt_f1 (float_of_int batch /. (us /. 1e6));
      ])
    [ (1000, 10); (1000, 100); (1000, 500); (5000, 100) ]

let run () =
  print_table
    ~title:
      "E8a. Outdated bitmaps: raw vs RLE-compressed bytes (20000-row x 8-col table, Fig 10)"
    ~headers:[ "pattern"; "cells"; "set bits"; "raw B"; "RLE B"; "compression x" ]
    ~rows:(bitmap_rows ());
  print_table
    ~title:
      "E8b. Invalidation cascades: gene edits re-derive PSequence (tool P) and mark PFunction"
    ~headers:
      [ "chains"; "updates"; "recomputed"; "marked"; "ms/update"; "updates/s" ]
    ~rows:(cascade_rows ())

(* E1 — Annotation storage schemes (paper Figures 3 vs 5, Section 3.1).

   The same multi-granularity annotation workload is stored with the
   per-cell scheme (one record per annotated cell, annotation value
   repeated — the paper's complaint that A2/B3 are stored 6 and 5 times)
   and the compact rectangle scheme.  Expected shape: compact uses far
   fewer records/bytes/pages, and retrieving the annotations of a column
   touches far fewer pages. *)

module Prng = Bdbms_util.Prng
module Rect = Bdbms_util.Rect
module Ann_store = Bdbms_annotation.Ann_store
module Workload = Bdbms_bio.Workload
open Bench_util

let rects_of_target ~rows ~cols = function
  | Workload.On_cell (r, c) -> [ Rect.cell ~row:r ~col:c ]
  | Workload.On_row r -> [ Rect.row_span ~row:r ~col_lo:0 ~col_hi:(cols - 1) ]
  | Workload.On_column c -> [ Rect.col_span ~col:c ~row_lo:0 ~row_hi:(rows - 1) ]
  | Workload.On_block (r0, r1, c0, c1) ->
      [ Rect.make ~row_lo:r0 ~row_hi:r1 ~col_lo:c0 ~col_hi:c1 ]

let build ?(indexed = false) scheme ~rows ~cols ~count ~profile ~seed =
  let rng = Prng.create seed in
  let targets = Workload.annotation_mix rng ~rows ~cols ~count ~profile in
  let disk, bp = mk_pool () in
  let store = Ann_store.create ~indexed scheme bp in
  List.iteri
    (fun i target ->
      Ann_store.add store
        ~ann_id:(Printf.sprintf "a%d" i)
        ~body:(Workload.comment_text rng)
        (rects_of_target ~rows ~cols target))
    targets;
  (disk, store)

let column_lookup_cost disk store ~rows =
  let _, accesses =
    measure_accesses disk (fun () ->
        Ann_store.ids_for_rect store (Rect.col_span ~col:0 ~row_lo:0 ~row_hi:(rows - 1)))
  in
  accesses

let run () =
  let cols = 5 in
  let configs =
    [ (500, 100, `Mixed); (2000, 400, `Mixed); (8000, 1200, `Mixed);
      (2000, 400, `Cells); (2000, 400, `Rows) ]
  in
  let rows_out =
    List.map
      (fun (rows, count, profile) ->
        let disk_c, cell = build Ann_store.Cell ~rows ~cols ~count ~profile ~seed:11 in
        let disk_r, compact = build Ann_store.Compact ~rows ~cols ~count ~profile ~seed:11 in
        let profile_name =
          match profile with `Mixed -> "mixed" | `Cells -> "cells" | `Rows -> "rows"
          | `Columns -> "columns"
        in
        [
          fmt_i rows;
          fmt_i count;
          profile_name;
          fmt_i (Ann_store.record_count cell);
          fmt_i (Ann_store.record_count compact);
          fmt_i (Ann_store.logical_bytes cell);
          fmt_i (Ann_store.logical_bytes compact);
          fmt_f1
            (float_of_int (Ann_store.logical_bytes cell)
            /. float_of_int (max 1 (Ann_store.logical_bytes compact)));
          fmt_i (column_lookup_cost disk_c cell ~rows);
          fmt_i (column_lookup_cost disk_r compact ~rows);
        ])
      configs
  in
  print_table
    ~title:
      "E1. Annotation storage: per-cell (Fig 3) vs compact rectangles (Fig 5) -- 5-column table"
    ~headers:
      [
        "rows"; "anns"; "profile"; "cell recs"; "compact recs"; "cell bytes";
        "compact bytes"; "bytes ratio"; "cell col-I/O"; "compact col-I/O";
      ]
    ~rows:rows_out;
  (* the paper also calls for INDEXING schemes: an R-tree over the compact
     rectangles turns the column lookup from a heap scan into an index
     descent *)
  let indexed_rows =
    List.map
      (fun (rows, count) ->
        let disk_s, scan_store =
          build Ann_store.Compact ~rows ~cols ~count ~profile:`Mixed ~seed:11
        in
        let disk_i, idx_store =
          build ~indexed:true Ann_store.Compact ~rows ~cols ~count ~profile:`Mixed
            ~seed:11
        in
        let cell_cost disk store =
          let _, accesses =
            measure_accesses disk (fun () ->
                Ann_store.ids_for_cell store ~row:(rows / 2) ~col:2)
          in
          accesses
        in
        [
          fmt_i rows; fmt_i count;
          fmt_i (cell_cost disk_s scan_store);
          fmt_i (cell_cost disk_i idx_store);
          fmt_i (Ann_store.index_pages idx_store);
        ])
      [ (2000, 400); (8000, 1200) ]
  in
  print_table
    ~title:"E1b. Annotation retrieval: heap scan vs R-tree-indexed compact store (cell lookup)"
    ~headers:[ "rows"; "anns"; "scan acc"; "indexed acc"; "index pages" ]
    ~rows:indexed_rows

(* E4 — Insertion I/O (paper Section 7.2: "up to 30% reduction in I/Os for
   the insertion operations").

   Page accesses performed while bulk-inserting the corpus into each
   index.  One suffix per run instead of one per character means fewer,
   cheaper B-tree descents; the expected shape is a substantial reduction
   that grows with the mean run length. *)

module Prng = Bdbms_util.Prng
module Workload = Bdbms_bio.Workload
open Bench_util

let run () =
  let rows_out =
    List.map
      (fun mean_run ->
        let texts =
          Workload.structures (Prng.create 37) ~n:30 ~len:600 ~mean_run
        in
        let total_chars = List.fold_left (fun acc s -> acc + String.length s) 0 texts in
        let _, _, sbc_io, str_io = E3_sbc_storage.build_both texts in
        [
          fmt_f1 mean_run;
          fmt_i sbc_io;
          fmt_i str_io;
          fmt_f (float_of_int sbc_io /. float_of_int total_chars);
          fmt_f (float_of_int str_io /. float_of_int total_chars);
          Printf.sprintf "%.0f%%"
            (100.0 *. (1.0 -. (float_of_int sbc_io /. float_of_int (max 1 str_io))));
        ])
      [ 1.2; 2.0; 4.0; 8.0; 16.0 ]
  in
  print_table
    ~title:
      "E4. Bulk-insert page accesses: SBC-tree vs String B-tree (paper claim: ~30% fewer I/Os)"
    ~headers:
      [ "mean run"; "SBC accesses"; "StrB accesses"; "SBC/char"; "StrB/char"; "saved" ]
    ~rows:rows_out

bench/e5_sbc_search.ml: Array Bdbms_bio Bdbms_sbc Bdbms_util Bench_util List String

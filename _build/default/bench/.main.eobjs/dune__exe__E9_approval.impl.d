bench/e9_approval.ml: Bdbms Bdbms_asql Bdbms_auth Bdbms_bio Bdbms_relation Bdbms_util Bench_util Db List Printf

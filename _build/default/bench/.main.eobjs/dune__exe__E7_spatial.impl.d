bench/e7_spatial.ml: Array Bdbms_bio Bdbms_index Bdbms_spgist Bdbms_util Bench_util List

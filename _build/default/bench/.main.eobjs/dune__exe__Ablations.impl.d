bench/ablations.ml: Bdbms Bdbms_bio Bdbms_index Bdbms_sbc Bdbms_storage Bdbms_util Bench_util List Printf

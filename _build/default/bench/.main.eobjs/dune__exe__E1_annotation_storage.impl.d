bench/e1_annotation_storage.ml: Bdbms_annotation Bdbms_bio Bdbms_util Bench_util List Printf

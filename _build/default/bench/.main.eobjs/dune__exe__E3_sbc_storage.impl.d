bench/e3_sbc_storage.ml: Bdbms_bio Bdbms_sbc Bdbms_util Bench_util List

bench/e6_trie_vs_btree.ml: Array Bdbms_bio Bdbms_index Bdbms_spgist Bdbms_util Bench_util List Result String

bench/e4_sbc_insert_io.ml: Bdbms_bio Bdbms_util Bench_util E3_sbc_storage List Printf String

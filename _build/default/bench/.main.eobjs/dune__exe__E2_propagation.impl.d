bench/e2_propagation.ml: Bdbms_annotation Bdbms_bio Bdbms_relation Bdbms_util Bench_util List

bench/e8_dependency.ml: Bdbms_bio Bdbms_dependency Bdbms_relation Bdbms_util Bench_util List Printf Result

bench/bench_util.ml: Array Bdbms_storage List Printf String Unix

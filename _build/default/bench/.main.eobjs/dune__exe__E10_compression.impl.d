bench/e10_compression.ml: Bdbms_bio Bdbms_util Bench_util List Result String

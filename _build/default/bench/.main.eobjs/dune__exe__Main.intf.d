bench/main.mli:

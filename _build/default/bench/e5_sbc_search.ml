(* E5 — Search performance (paper Section 7.2: the SBC-tree "retains the
   optimal search performance achieved by the String B-tree over the
   uncompressed sequences").

   Substring queries of several lengths, half sampled from the corpus
   (hits) and half random (mostly misses), measured as logical page
   accesses per query on each index.  Expected shape: comparable access
   counts — compression does not cost search — with the SBC-tree cheaper
   on long patterns (fewer runs to compare). *)

module Prng = Bdbms_util.Prng
module Workload = Bdbms_bio.Workload
module Secondary = Bdbms_bio.Secondary
module Sbc_tree = Bdbms_sbc.Sbc_tree
module String_btree = Bdbms_sbc.String_btree
open Bench_util

let sample_patterns rng texts ~len ~count =
  let arr = Array.of_list texts in
  List.init count (fun i ->
      if i mod 2 = 0 then begin
        (* a real substring: guaranteed hit *)
        let s = arr.(Prng.int rng (Array.length arr)) in
        let pos = Prng.int rng (max 1 (String.length s - len)) in
        String.sub s pos (min len (String.length s - pos))
      end
      else Secondary.random rng ~len ~mean_run:3.0)

let run () =
  let mean_run = 8.0 in
  let texts = Workload.structures (Prng.create 41) ~n:30 ~len:600 ~mean_run in
  let disk_sbc, bp_sbc = mk_pool () in
  let disk_str, bp_str = mk_pool () in
  let sbc = Sbc_tree.create ~with_three_sided:false bp_sbc in
  let strb = String_btree.create bp_str in
  List.iter (fun s -> ignore (Sbc_tree.insert sbc s)) texts;
  List.iter (fun s -> ignore (String_btree.insert strb s)) texts;
  let rng = Prng.create 43 in
  let rows_out =
    List.map
      (fun len ->
        let patterns = sample_patterns rng texts ~len ~count:40 in
        let sbc_total = ref 0 and str_total = ref 0 in
        let sbc_time = ref 0.0 and str_time = ref 0.0 in
        let agreement = ref true in
        List.iter
          (fun p ->
            let sbc_hits, io =
              measure_accesses disk_sbc (fun () ->
                  let r, us = time_us (fun () -> Sbc_tree.substring_search sbc p) in
                  sbc_time := !sbc_time +. us;
                  r)
            in
            sbc_total := !sbc_total + io;
            let str_hits, io' =
              measure_accesses disk_str (fun () ->
                  let r, us = time_us (fun () -> String_btree.substring_search strb p) in
                  str_time := !str_time +. us;
                  r)
            in
            str_total := !str_total + io';
            (* both must agree on WHICH sequences contain the pattern *)
            let seqs_a =
              List.sort_uniq compare (List.map (fun o -> o.Sbc_tree.seq) sbc_hits)
            in
            let seqs_b =
              List.sort_uniq compare (List.map (fun o -> o.String_btree.seq) str_hits)
            in
            if seqs_a <> seqs_b then agreement := false)
          patterns;
        let n = float_of_int (List.length patterns) in
        [
          fmt_i len;
          fmt_f1 (float_of_int !sbc_total /. n);
          fmt_f1 (float_of_int !str_total /. n);
          fmt_f (!sbc_time /. n /. 1000.0);
          fmt_f (!str_time /. n /. 1000.0);
          (if !agreement then "yes" else "NO");
        ])
      [ 4; 8; 16; 32; 64 ]
  in
  print_table
    ~title:
      "E5. Substring search: SBC-tree (compressed) vs String B-tree (uncompressed), 40 queries/row"
    ~headers:
      [
        "pattern len"; "SBC acc/query"; "StrB acc/query"; "SBC ms/q"; "StrB ms/q";
        "same answers";
      ]
    ~rows:rows_out

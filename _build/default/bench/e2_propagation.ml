(* E2 — Annotation propagation (paper Section 3.4's 3-statement example).

   Without DBMS support, retrieving the genes common to DB1_Gene and
   DB2_Gene *with their annotations* takes three statements over explicit
   annotation columns: a data-only INTERSECT, then two joins to collect
   and consolidate each side's annotation columns.  In A-SQL it is a
   single annotated INTERSECT.  Expected shape: one statement instead of
   three, fewer intermediate tuples, comparable or better runtime, and
   identical answers. *)

module Value = Bdbms_relation.Value
module Schema = Bdbms_relation.Schema
module Tuple = Bdbms_relation.Tuple
module Table = Bdbms_relation.Table
module Expr = Bdbms_relation.Expr
module Ops = Bdbms_relation.Ops
module Manager = Bdbms_annotation.Manager
module Region = Bdbms_annotation.Region
module Propagate = Bdbms_annotation.Propagate
module Prng = Bdbms_util.Prng
module Clock = Bdbms_util.Clock
module Workload = Bdbms_bio.Workload
open Bench_util

let v s = Value.VString s

(* schema WITH annotation columns, as in the paper's Figure 3 *)
let fig3_schema () =
  Schema.make
    [
      { Schema.name = "GID"; ty = Value.TString };
      { Schema.name = "GName"; ty = Value.TString };
      { Schema.name = "GSequence"; ty = Value.TString };
      { Schema.name = "Ann_GID"; ty = Value.TString };
      { Schema.name = "Ann_GName"; ty = Value.TString };
      { Schema.name = "Ann_GSequence"; ty = Value.TString };
    ]

let plain_schema () =
  Schema.make
    [
      { Schema.name = "GID"; ty = Value.TString };
      { Schema.name = "GName"; ty = Value.TString };
      { Schema.name = "GSequence"; ty = Value.TString };
    ]

(* Build both representations of the same annotated data:
   (a) Figure-3 tables with annotation columns, (b) plain tables + the
   annotation manager.  Half the genes are shared between DB1 and DB2. *)
let build ~n ~seed =
  let rng = Prng.create seed in
  let shared = Workload.genes rng ~n:(n / 2) ~codons:6 () in
  let own1 =
    Workload.genes (Prng.create (seed + 1)) ~n:(n / 2) ~codons:6 ~id_prefix:"JX" ()
  in
  let own2 =
    Workload.genes (Prng.create (seed + 2)) ~n:(n / 2) ~codons:6 ~id_prefix:"JY" ()
  in
  let db1_rows = shared @ own1 and db2_rows = shared @ own2 in
  let disk, bp = mk_pool ~page_size:4096 () in
  let clock = Clock.create () in
  let mgr = Manager.create bp clock in
  (* (a) Figure-3 style *)
  let mk_fig3 name rows tag =
    let t = Table.create bp ~name:(name ^ "_f3") (fig3_schema ()) in
    List.iteri
      (fun i g ->
        (* one row-level annotation on every 4th row, column annotation via
           the same id on GSequence (mirrors B3) *)
        let ann = if i mod 4 = 0 then tag ^ string_of_int i else "" in
        let seq_ann = tag ^ "_col" in
        ignore
          (Table.insert t
             (Tuple.make
                [
                  v g.Workload.gid; v g.Workload.gname; v g.Workload.gsequence;
                  v ann; v ann; v (if ann = "" then seq_ann else ann ^ "," ^ seq_ann);
                ])))
      rows;
    t
  in
  let f3_db1 = mk_fig3 "DB1" db1_rows "A" in
  let f3_db2 = mk_fig3 "DB2" db2_rows "B" in
  (* (b) bdbms-style *)
  let mk_plain name rows tag =
    let t = Table.create bp ~name (plain_schema ()) in
    List.iter
      (fun g ->
        ignore
          (Table.insert t
             (Tuple.make [ v g.Workload.gid; v g.Workload.gname; v g.Workload.gsequence ])))
      rows;
    ignore (Manager.create_annotation_table mgr ~table:t ~name:"GAnnotation" ());
    List.iteri
      (fun i _ ->
        if i mod 4 = 0 then
          ignore
            (Manager.add_text mgr ~table:t ~ann_tables:[ "GAnnotation" ]
               ~text:(tag ^ string_of_int i) ~author:"u" ~region:(Region.of_row i) ()))
      rows;
    ignore
      (Manager.add_text mgr ~table:t ~ann_tables:[ "GAnnotation" ] ~text:(tag ^ "_col")
         ~author:"u" ~region:(Region.of_column "GSequence") ());
    t
  in
  let p_db1 = mk_plain "DB1_Gene" db1_rows "A" in
  let p_db2 = mk_plain "DB2_Gene" db2_rows "B" in
  ignore disk;
  (mgr, f3_db1, f3_db2, p_db1, p_db2)

(* the paper's steps (a)-(c) over the Figure-3 tables *)
let manual_three_statements f3_db1 f3_db2 =
  let data_cols = [ "GID"; "GName"; "GSequence" ] in
  (* (a) data-only intersection *)
  let r1 =
    Ops.intersect
      (Ops.project (Ops.scan f3_db1) data_cols)
      (Ops.project (Ops.scan f3_db2) data_cols)
  in
  (* (b) join back with DB1 to recover its annotation columns *)
  let r2 =
    Ops.project
      (Ops.join r1 (Ops.scan f3_db1)
         ~on:(Expr.Cmp (Expr.Eq, Expr.Col "GID", Expr.Col "r_GID")))
      [ "GID"; "GName"; "GSequence"; "Ann_GID"; "Ann_GName"; "Ann_GSequence" ]
  in
  (* (c) join with DB2 and concatenate both sides' annotation columns *)
  let joined =
    Ops.join r2 (Ops.scan f3_db2)
      ~on:(Expr.Cmp (Expr.Eq, Expr.Col "GID", Expr.Col "r_GID"))
  in
  let union_col a b out =
    Ops.extend joined ~name:out ~ty:Value.TString
      (Expr.Concat (Expr.Concat (Expr.Col a, Expr.Lit (v ",")), Expr.Col b))
    |> fun _ -> (a, b, out)
  in
  ignore union_col;
  let r3 =
    List.fold_left
      (fun acc (a, b, out) ->
        Ops.extend acc ~name:out ~ty:Value.TString
          (Expr.Concat (Expr.Concat (Expr.Col a, Expr.Lit (v ",")), Expr.Col b)))
      joined
      [
        ("Ann_GID", "r_Ann_GID", "U_GID");
        ("Ann_GName", "r_Ann_GName", "U_GName");
        ("Ann_GSequence", "r_Ann_GSequence", "U_GSequence");
      ]
    |> fun rs ->
    Ops.project rs [ "GID"; "GName"; "GSequence"; "U_GID"; "U_GName"; "U_GSequence" ]
  in
  (r1, r2, r3)

let asql_single_statement mgr p_db1 p_db2 =
  Propagate.intersect
    (Propagate.scan mgr p_db1 ())
    (Propagate.scan mgr p_db2 ())

let run () =
  let rows_out =
    List.map
      (fun n ->
        let mgr, f3_db1, f3_db2, p_db1, p_db2 = build ~n ~seed:23 in
        let (r1, r2, r3), manual_us =
          time_us (fun () -> manual_three_statements f3_db1 f3_db2)
        in
        let manual_intermediate = Ops.row_count r1 + Ops.row_count r2 in
        let asql_result, asql_us =
          time_us (fun () -> asql_single_statement mgr p_db1 p_db2)
        in
        (* both answers have the same common-gene set *)
        assert (Ops.row_count r3 = Propagate.row_count asql_result);
        [
          fmt_i n;
          "3";
          "1";
          fmt_i manual_intermediate;
          "0";
          fmt_f (manual_us /. 1000.0);
          fmt_f (asql_us /. 1000.0);
          fmt_i (Propagate.row_count asql_result);
        ])
      [ 200; 800; 2000 ]
  in
  print_table
    ~title:
      "E2. Annotation propagation: manual 3-statement SQL (Fig 3 columns) vs one A-SQL INTERSECT"
    ~headers:
      [
        "genes/table"; "stmts manual"; "stmts A-SQL"; "interm. tuples manual";
        "interm. tuples A-SQL"; "manual ms"; "A-SQL ms"; "common genes";
      ]
    ~rows:rows_out

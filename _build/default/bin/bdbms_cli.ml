(* The bdbms shell: run A-SQL interactively or from a script file.

     dune exec bin/bdbms_cli.exe                 # interactive
     dune exec bin/bdbms_cli.exe -- -f setup.sql # run a script
     dune exec bin/bdbms_cli.exe -- -u alice     # session user        *)

open Bdbms

let run_statement db ~user sql =
  match Db.exec db ~user sql with
  | Ok outcome -> print_endline (Bdbms_asql.Executor.render outcome)
  | Error e -> Printf.printf "error: %s\n" e

let run_script db ~user path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  match Bdbms_asql.Parser.parse_multi src with
  | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      exit 1
  | Ok stmts ->
      List.iter
        (fun stmt ->
          match Bdbms_asql.Executor.execute (Db.context db) ~user stmt with
          | Ok outcome -> print_endline (Bdbms_asql.Executor.render outcome)
          | Error e ->
              Printf.eprintf "error: %s\n" e;
              exit 1)
        stmts

let repl db ~user =
  Printf.printf
    "bdbms shell (user: %s). End statements with ';'. Type \\q to quit.\n" user;
  let buf = Buffer.create 256 in
  let rec loop () =
    print_string (if Buffer.length buf = 0 then "bdbms> " else "   ... ");
    match read_line () with
    | exception End_of_file -> ()
    | "\\q" -> ()
    | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        let src = Buffer.contents buf in
        if String.contains line ';' then begin
          Buffer.clear buf;
          run_statement db ~user (String.trim src)
        end;
        loop ()
  in
  loop ()

let main user script strict_acl auto_prov stats =
  let db = Db.create () in
  Db.set_strict_acl db strict_acl;
  Db.set_auto_provenance db auto_prov;
  (match script with
  | Some path -> run_script db ~user path
  | None -> repl db ~user);
  if stats then begin
    let s = Db.io_stats db in
    Printf.printf
      "-- i/o: %d physical reads, %d writes, %d page allocations, %d buffer hits\n"
      s.Bdbms_storage.Stats.reads s.Bdbms_storage.Stats.writes
      s.Bdbms_storage.Stats.allocs s.Bdbms_storage.Stats.hits
  end;
  0

open Cmdliner

let user_arg =
  Arg.(value & opt string "admin" & info [ "u"; "user" ] ~docv:"USER" ~doc:"Session user.")

let script_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Run a ;-separated A-SQL script.")

let strict_arg =
  Arg.(value & flag & info [ "strict-acl" ] ~doc:"Enforce GRANT/REVOKE for non-admin users.")

let prov_arg =
  Arg.(value & flag & info [ "auto-provenance" ] ~doc:"Record provenance on every DML.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print page-level I/O statistics on exit.")

let cmd =
  let doc = "A-SQL shell for bdbms, the biological DBMS (CIDR 2007 reproduction)" in
  Cmd.v
    (Cmd.info "bdbms" ~doc)
    Term.(const main $ user_arg $ script_arg $ strict_arg $ prov_arg $ stats_arg)

let () = exit (Cmd.eval' cmd)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric";
  if p >= 1.0 then 1
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    1 + int_of_float (Float.floor (log u /. log (1.0 -. p)))

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let string t ~alphabet ~len =
  if alphabet = "" then invalid_arg "Prng.string: empty alphabet";
  String.init len (fun _ -> alphabet.[int t (String.length alphabet)])

(** Run-length encoding of character sequences.

    RLE replaces consecutive repeats of a character [c] by a single run
    [(c, frequency)].  It is the compression scheme the paper applies to
    biological sequences (protein secondary structures, Figure 12) before
    indexing them with the SBC-tree, and to the outdated-data bitmaps of the
    dependency manager (Section 5). *)

type run = { ch : char; len : int }
(** One maximal run: [len] consecutive occurrences of [ch].  [len >= 1]. *)

type t
(** An RLE-compressed sequence.  The compressed form is canonical: adjacent
    runs always have distinct characters and every run has positive length. *)

val encode : string -> t
(** [encode s] compresses [s].  [decode (encode s) = s] for all [s]. *)

val decode : t -> string
(** Expand back to the raw sequence. *)

val runs : t -> run list
(** The canonical run list, in sequence order. *)

val of_runs : run list -> t
(** Build from a run list; adjacent equal characters are merged and
    zero-length runs dropped, restoring canonical form.
    @raise Invalid_argument on a negative run length. *)

val raw_length : t -> int
(** Length of the uncompressed sequence. *)

val run_count : t -> int
(** Number of runs in the compressed form. *)

val encoded_size_bytes : t -> int
(** Storage footprint of the compressed form using the paper's textual
    convention (one byte per character plus the digits of each frequency),
    e.g. ["H10"] costs 3 bytes. *)

val compression_ratio : t -> float
(** [raw_length t / encoded_size_bytes t]; > 1 when RLE wins. *)

val char_at : t -> int -> char
(** [char_at t i] is character [i] of the decoded sequence, computed without
    decompressing.  @raise Invalid_argument if out of bounds. *)

val sub : t -> pos:int -> len:int -> t
(** Compressed substring extraction without full decompression.
    @raise Invalid_argument if the range is out of bounds. *)

val append : t -> t -> t
(** Concatenation in compressed space (merges the boundary runs). *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic order of the {e decoded} sequences, computed run-by-run
    without decompressing. *)

val compare_raw : t -> string -> int
(** Compare the decoded sequence with a raw string, without decompressing. *)

val find_substring : t -> pattern:string -> int option
(** First match position of [pattern] in the decoded sequence, scanning the
    compressed form directly (used as the SBC-tree's verification step). *)

val is_subsequence : t -> pattern:string -> bool
(** Does [pattern] occur as a {e subsequence} (characters in order, gaps
    allowed) of the decoded sequence?  Greedy scan over the runs — the
    sequence-alignment-style operation the paper plans as an SBC-tree
    extension — without decompressing. *)

val to_string : t -> string
(** Textual form like ["L3E7H22"], as in the paper's Figure 12. *)

val of_string : string -> t
(** Parse the textual form produced by {!to_string}.
    @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit

(** Logical timestamps.

    Annotations carry the timestamp assigned when first added (Section 3.3,
    used by ARCHIVE / RESTORE ... BETWEEN), provenance records carry the
    operation time (Figure 8, "source of this value at time T"), and the
    approval log orders update operations (Section 6).  A per-database
    logical clock keeps all of these totally ordered and reproducible. *)

type t
type time = int

val create : unit -> t
(** Fresh clock starting at time 1. *)

val now : t -> time
(** Current time, without advancing. *)

val tick : t -> time
(** Advance and return the new time. *)

val advance_to : t -> time -> unit
(** Move the clock forward to at least [time] (no-op if already past). *)

val pp_time : Format.formatter -> time -> unit

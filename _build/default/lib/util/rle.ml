type run = { ch : char; len : int }

type t = run array

let canonicalize (rs : run list) : run array =
  let rec merge acc = function
    | [] -> List.rev acc
    | { len = 0; _ } :: rest -> merge acc rest
    | r :: rest -> (
        if r.len < 0 then invalid_arg "Rle.of_runs: negative run length";
        match acc with
        | prev :: acc' when prev.ch = r.ch ->
            merge ({ ch = r.ch; len = prev.len + r.len } :: acc') rest
        | _ -> merge (r :: acc) rest)
  in
  Array.of_list (merge [] rs)

let of_runs rs = canonicalize rs

let runs t = Array.to_list t

let encode s =
  let n = String.length s in
  let rec scan i acc =
    if i >= n then List.rev acc
    else
      let c = s.[i] in
      let j = ref i in
      while !j < n && s.[!j] = c do
        incr j
      done;
      scan !j ({ ch = c; len = !j - i } :: acc)
  in
  Array.of_list (scan 0 [])

let raw_length t = Array.fold_left (fun acc r -> acc + r.len) 0 t

let run_count t = Array.length t

let decode t =
  let buf = Buffer.create (raw_length t) in
  Array.iter (fun r -> Buffer.add_string buf (String.make r.len r.ch)) t;
  Buffer.contents buf

let digits n = if n = 0 then 1 else String.length (string_of_int n)

let encoded_size_bytes t =
  Array.fold_left (fun acc r -> acc + 1 + digits r.len) 0 t

let compression_ratio t =
  let enc = encoded_size_bytes t in
  if enc = 0 then 1.0 else float_of_int (raw_length t) /. float_of_int enc

let char_at t i =
  if i < 0 then invalid_arg "Rle.char_at";
  let rec go k off =
    if k >= Array.length t then invalid_arg "Rle.char_at"
    else if i < off + t.(k).len then t.(k).ch
    else go (k + 1) (off + t.(k).len)
  in
  go 0 0

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > raw_length t then invalid_arg "Rle.sub";
  if len = 0 then [||]
  else
    let out = ref [] in
    let remaining = ref len in
    let off = ref 0 in
    Array.iter
      (fun r ->
        if !remaining > 0 then begin
          let run_start = !off and run_end = !off + r.len in
          let want_start = max run_start (pos + len - !remaining) in
          let _ = want_start in
          (* portion of this run that overlaps [pos, pos+len) *)
          let lo = max run_start pos and hi = min run_end (pos + len) in
          if hi > lo then begin
            out := { ch = r.ch; len = hi - lo } :: !out;
            remaining := !remaining - (hi - lo)
          end;
          off := run_end
        end)
      t;
    canonicalize (List.rev !out)

let append a b = canonicalize (Array.to_list a @ Array.to_list b)

let equal a b = a = b

(* Lexicographic comparison of decoded sequences, run by run. *)
let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go ia ib oa ob =
    (* oa/ob: chars already consumed from current run of a/b *)
    if ia >= la && ib >= lb then 0
    else if ia >= la then -1
    else if ib >= lb then 1
    else
      let ra = a.(ia) and rb = b.(ib) in
      let c = Char.compare ra.ch rb.ch in
      if c <> 0 then c
      else
        let avail_a = ra.len - oa and avail_b = rb.len - ob in
        let step = min avail_a avail_b in
        let oa' = oa + step and ob' = ob + step in
        let ia' = if oa' = ra.len then ia + 1 else ia in
        let ib' = if ob' = rb.len then ib + 1 else ib in
        go ia' ib' (if oa' = ra.len then 0 else oa') (if ob' = rb.len then 0 else ob')
  in
  go 0 0 0 0

let compare_raw t s =
  let n = String.length s in
  let rec go k off si =
    if k >= Array.length t && si >= n then 0
    else if k >= Array.length t then -1
    else if si >= n then 1
    else
      let r = t.(k) in
      let c = Char.compare r.ch s.[si] in
      if c <> 0 then c
      else
        let avail = r.len - off in
        let step = min avail (n - si) in
        let off' = off + step in
        if off' = r.len then go (k + 1) 0 (si + step) else go k off' (si + step)
  in
  go 0 0 0

(* Substring search over the compressed form: align pattern starts only at
   positions where a match is possible given run structure.  A match can only
   begin inside a run of the pattern's first character; within such a run,
   candidate start offsets are constrained by how many leading repeats the
   pattern needs. *)
let find_substring t ~pattern =
  let m = String.length pattern in
  if m = 0 then Some 0
  else begin
    (* leading run of the pattern *)
    let p0 = pattern.[0] in
    let plead = ref 1 in
    while !plead < m && pattern.[!plead] = p0 do
      incr plead
    done;
    let plead = !plead in
    let nruns = Array.length t in
    (* offsets.(k) = raw offset of run k *)
    let offsets = Array.make (nruns + 1) 0 in
    for k = 0 to nruns - 1 do
      offsets.(k + 1) <- offsets.(k) + t.(k).len
    done;
    let total = offsets.(nruns) in
    (* verify a candidate start position without decompressing *)
    let matches_at pos =
      if pos + m > total then false
      else begin
        (* locate run containing pos *)
        let k = ref 0 in
        while offsets.(!k + 1) <= pos do
          incr k
        done;
        let rec check k off si =
          if si >= m then true
          else if k >= nruns then false
          else
            let r = t.(k) in
            if r.ch <> pattern.[si] then false
            else
              let avail = r.len - off in
              (* all of the next [avail] raw chars are r.ch; pattern must
                 match them char-by-char *)
              let rec eat j =
                if j >= m || j - si >= avail then j
                else if pattern.[j] = r.ch then eat (j + 1)
                else j
              in
              let j = eat si in
              if j >= m then true
              else if j - si = avail then check (k + 1) 0 j
              else false
        in
        check !k (pos - offsets.(!k)) 0
      end
    in
    let result = ref None in
    let k = ref 0 in
    while !result = None && !k < nruns do
      let r = t.(!k) in
      if r.ch = p0 && r.len >= plead then begin
        (* A match starting in run k must leave at least [plead] copies of p0
           before the run ends (or the pattern is all-p0 and may span runs --
           impossible since runs are maximal; so require plead <= remaining). *)
        let first = offsets.(!k) and last = offsets.(!k) + r.len - plead in
        let pos = ref first in
        while !result = None && !pos <= last do
          (* candidate must be flush: if pattern continues past the run, the
             leading run of the pattern must end exactly at the run boundary *)
          if matches_at !pos then result := Some !pos;
          incr pos
        done
      end;
      incr k
    done;
    !result
  end

(* Greedy subsequence check over runs: consume as much of the pattern as
   each run allows; greedy is optimal for subsequence matching. *)
let is_subsequence t ~pattern =
  let m = String.length pattern in
  let pi = ref 0 in
  Array.iter
    (fun r ->
      if !pi < m && pattern.[!pi] = r.ch then begin
        (* this run can supply up to r.len copies of r.ch *)
        let supplied = ref 0 in
        while !pi < m && pattern.[!pi] = r.ch && !supplied < r.len do
          incr pi;
          incr supplied
        done
      end)
    t;
  !pi >= m

let to_string t =
  let buf = Buffer.create (2 * Array.length t) in
  Array.iter
    (fun r ->
      Buffer.add_char buf r.ch;
      Buffer.add_string buf (string_of_int r.len))
    t;
  Buffer.contents buf

let of_string s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let c = s.[i] in
      let j = ref (i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j = i + 1 then invalid_arg "Rle.of_string: missing run length";
      let len = int_of_string (String.sub s (i + 1) (!j - i - 1)) in
      go !j ({ ch = c; len } :: acc)
  in
  if n = 0 then [||] else canonicalize (go 0 [])

let pp fmt t = Format.pp_print_string fmt (to_string t)

type t =
  | Element of string * (string * string) list * t list
  | Text of string

exception Parse_error of string

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      let j = try String.index_from s !i ';' with Not_found -> raise (Parse_error "unterminated entity") in
      let ent = String.sub s (!i + 1) (j - !i - 1) in
      let c =
        match ent with
        | "lt" -> "<"
        | "gt" -> ">"
        | "amp" -> "&"
        | "quot" -> "\""
        | "apos" -> "'"
        | _ -> raise (Parse_error ("unknown entity: &" ^ ent ^ ";"))
      in
      Buffer.add_string buf c;
      i := j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces st =
  while st.pos < String.length st.src && is_space st.src.[st.pos] do
    st.pos <- st.pos + 1
  done

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name st =
  let start = st.pos in
  while st.pos < String.length st.src && is_name_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then raise (Parse_error "expected a name");
  String.sub st.src start (st.pos - start)

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> raise (Parse_error (Printf.sprintf "expected '%c' at position %d" c st.pos))

let read_attr st =
  let name = read_name st in
  skip_spaces st;
  expect st '=';
  skip_spaces st;
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) -> q
    | _ -> raise (Parse_error "expected a quoted attribute value")
  in
  st.pos <- st.pos + 1;
  let start = st.pos in
  (try
     while st.src.[st.pos] <> quote do
       st.pos <- st.pos + 1
     done
   with Invalid_argument _ -> raise (Parse_error "unterminated attribute value"));
  let value = unescape (String.sub st.src start (st.pos - start)) in
  st.pos <- st.pos + 1;
  (name, value)

let rec parse_element st =
  expect st '<';
  let tag = read_name st in
  let attrs = ref [] in
  skip_spaces st;
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    attrs := read_attr st :: !attrs;
    skip_spaces st
  done;
  match peek st with
  | Some '/' ->
      st.pos <- st.pos + 1;
      expect st '>';
      Element (tag, List.rev !attrs, [])
  | Some '>' ->
      st.pos <- st.pos + 1;
      let children = parse_children st tag in
      Element (tag, List.rev !attrs, children)
  | _ -> raise (Parse_error "malformed start tag")

and parse_children st tag =
  let children = ref [] in
  let finished = ref false in
  while not !finished do
    if st.pos >= String.length st.src then
      raise (Parse_error ("unterminated element <" ^ tag ^ ">"));
    if st.src.[st.pos] = '<' then
      if st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' then begin
        st.pos <- st.pos + 2;
        let close = read_name st in
        if close <> tag then
          raise (Parse_error (Printf.sprintf "mismatched close tag </%s> for <%s>" close tag));
        skip_spaces st;
        expect st '>';
        finished := true
      end
      else children := parse_element st :: !children
    else begin
      let start = st.pos in
      while st.pos < String.length st.src && st.src.[st.pos] <> '<' do
        st.pos <- st.pos + 1
      done;
      let txt = unescape (String.sub st.src start (st.pos - start)) in
      if String.trim txt <> "" then children := Text txt :: !children
    end
  done;
  List.rev !children

let parse s =
  let st = { src = s; pos = 0 } in
  skip_spaces st;
  let root = parse_element st in
  skip_spaces st;
  if st.pos <> String.length s then
    raise (Parse_error "trailing content after root element");
  root

let rec to_string = function
  | Text s -> escape s
  | Element (tag, attrs, children) ->
      let buf = Buffer.create 64 in
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape v);
          Buffer.add_char buf '"')
        attrs;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (fun c -> Buffer.add_string buf (to_string c)) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
      end;
      Buffer.contents buf

let tag = function Element (t, _, _) -> Some t | Text _ -> None

let attr node name =
  match node with
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

let rec text_content = function
  | Text s -> s
  | Element (_, _, children) -> String.concat "" (List.map text_content children)

let children = function Element (_, _, cs) -> cs | Text _ -> []

let find_path root path =
  let rec go nodes = function
    | [] -> nodes
    | tag_name :: rest ->
        let next =
          List.concat_map
            (fun node ->
              List.filter
                (fun child -> tag child = Some tag_name)
                (children node))
            nodes
        in
        go next rest
  in
  go [ root ] path

let element ?(attrs = []) tag_name kids = Element (tag_name, attrs, kids)
let text s = Text s

module Schema = struct
  type rule = {
    tag : string;
    required_attrs : string list;
    allowed_children : string list option;
    required_children : string list;
  }

  type schema = { root : string; rules : (string, rule) Hashtbl.t }

  let make ~root rules =
    let tbl = Hashtbl.create 16 in
    List.iter (fun r -> Hashtbl.replace tbl r.tag r) rules;
    { root; rules = tbl }

  let validate schema doc =
    let problems = ref [] in
    let fail msg = problems := msg :: !problems in
    (match tag doc with
    | Some t when t = schema.root -> ()
    | Some t -> fail (Printf.sprintf "root tag is <%s>, expected <%s>" t schema.root)
    | None -> fail "root must be an element");
    let rec check node =
      match node with
      | Text _ -> ()
      | Element (t, attrs, kids) ->
          (match Hashtbl.find_opt schema.rules t with
          | None -> ()
          | Some rule ->
              List.iter
                (fun a ->
                  if not (List.mem_assoc a attrs) then
                    fail (Printf.sprintf "<%s> is missing required attribute %S" t a))
                rule.required_attrs;
              let child_tags = List.filter_map tag kids in
              (match rule.allowed_children with
              | None -> ()
              | Some allowed ->
                  List.iter
                    (fun ct ->
                      if not (List.mem ct allowed) then
                        fail (Printf.sprintf "<%s> may not contain <%s>" t ct))
                    child_tags);
              List.iter
                (fun rc ->
                  if not (List.mem rc child_tags) then
                    fail (Printf.sprintf "<%s> is missing required child <%s>" t rc))
                rule.required_children);
          List.iter check kids
    in
    check doc;
    match List.rev !problems with
    | [] -> Ok ()
    | ps -> Error (String.concat "; " ps)
end

type time = int
type t = { mutable current : time }

let create () = { current = 1 }
let now t = t.current

let tick t =
  t.current <- t.current + 1;
  t.current

let advance_to t time = if time > t.current then t.current <- time

let pp_time fmt time = Format.fprintf fmt "t%d" time

(** Deterministic pseudo-random number generator (SplitMix64).

    Every synthetic workload in the benchmarks is seeded explicitly so
    results are reproducible run-to-run; the global [Random] state is never
    used anywhere in the repository. *)

type t

val create : int -> t
(** Seeded generator; equal seeds yield identical streams. *)

val copy : t -> t
val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> bool

val geometric : t -> p:float -> int
(** Geometric distribution (number of trials until first success, >= 1);
    used to draw run lengths with a chosen mean.  Mean is [1/p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val string : t -> alphabet:string -> len:int -> string
(** Random string over the given alphabet. *)

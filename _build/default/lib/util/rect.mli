(** Rectangular cell regions over a table viewed as a 2-D space.

    Section 3.1 / Figure 5: a table is viewed as a two-dimensional space
    (columns = X axis, tuples = Y axis) so an annotation over any group of
    contiguous cells is represented by a single rectangle record instead of
    one record per cell.  Coordinates are inclusive on both ends. *)

type t = { row_lo : int; row_hi : int; col_lo : int; col_hi : int }

val make : row_lo:int -> row_hi:int -> col_lo:int -> col_hi:int -> t
(** @raise Invalid_argument if [row_lo > row_hi] or [col_lo > col_hi] or any
    coordinate is negative. *)

val cell : row:int -> col:int -> t
(** Single-cell rectangle. *)

val row_span : row:int -> col_lo:int -> col_hi:int -> t
val col_span : col:int -> row_lo:int -> row_hi:int -> t

val area : t -> int
(** Number of cells covered. *)

val contains : t -> row:int -> col:int -> bool
val intersects : t -> t -> bool
val intersection : t -> t -> t option
val is_subset : t -> of_:t -> bool

val union_bound : t -> t -> t
(** Smallest rectangle containing both. *)

val try_merge : t -> t -> t option
(** [Some r] when the two rectangles tile [r] exactly (they are adjacent or
    overlapping along one axis and aligned on the other); [None] otherwise. *)

val cover_of_cells : (int * int) list -> t list
(** Greedy decomposition of an arbitrary cell set into disjoint maximal
    horizontal-strip rectangles.  The cover is exact: it covers precisely
    the input cells, with no overlaps. *)

val cells : t -> (int * int) list
(** All (row, col) pairs covered, row-major. *)

val subtract : t -> t -> t list
(** [subtract a b] is a disjoint rectangle set covering exactly [a \ b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

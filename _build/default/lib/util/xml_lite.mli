(** A small XML subset for annotation bodies and provenance records.

    Section 3.2 plans XML-formatted annotations so users can
    (semi-)structure them and query them; Section 4 requires provenance
    records to follow a predefined XML schema enforced by the system.
    This module implements exactly the subset those features need:
    elements with attributes, text content, escaping, path lookup, and a
    simple schema validator.  No namespaces, comments, CDATA or DTDs. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (tag, attributes, children)] *)
  | Text of string

exception Parse_error of string

val parse : string -> t
(** Parse a single root element.  @raise Parse_error on malformed input. *)

val to_string : t -> string
(** Serialize with proper escaping; [parse (to_string x)] = [x] up to
    whitespace normalization of pure-text nodes. *)

val escape : string -> string
val unescape : string -> string

val tag : t -> string option
(** Tag of an element, [None] for text. *)

val attr : t -> string -> string option
(** Attribute lookup on an element. *)

val text_content : t -> string
(** Concatenated text of the node and its descendants. *)

val children : t -> t list

val find_path : t -> string list -> t list
(** [find_path root ["a"; "b"]] returns the [b] elements that are children
    of [a] elements that are children of [root] (root's own tag is not
    consumed by the path). *)

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

(** Structural schemas: per-tag allowed/required children and attributes. *)
module Schema : sig
  type rule = {
    tag : string;
    required_attrs : string list;
    allowed_children : string list option;
        (** [None] = any children allowed; [Some tags] = only these. *)
    required_children : string list;
  }

  type schema

  val make : root:string -> rule list -> schema

  val validate : schema -> t -> (unit, string) result
  (** Checks the root tag, then every element against its rule (elements
      with no rule are accepted as free-form). *)
end

type t = { row_lo : int; row_hi : int; col_lo : int; col_hi : int }

let make ~row_lo ~row_hi ~col_lo ~col_hi =
  if row_lo > row_hi || col_lo > col_hi || row_lo < 0 || col_lo < 0 then
    invalid_arg "Rect.make";
  { row_lo; row_hi; col_lo; col_hi }

let cell ~row ~col = make ~row_lo:row ~row_hi:row ~col_lo:col ~col_hi:col

let row_span ~row ~col_lo ~col_hi = make ~row_lo:row ~row_hi:row ~col_lo ~col_hi

let col_span ~col ~row_lo ~row_hi = make ~row_lo ~row_hi ~col_lo:col ~col_hi:col

let area t = (t.row_hi - t.row_lo + 1) * (t.col_hi - t.col_lo + 1)

let contains t ~row ~col =
  row >= t.row_lo && row <= t.row_hi && col >= t.col_lo && col <= t.col_hi

let intersects a b =
  a.row_lo <= b.row_hi && b.row_lo <= a.row_hi
  && a.col_lo <= b.col_hi && b.col_lo <= a.col_hi

let intersection a b =
  if not (intersects a b) then None
  else
    Some
      {
        row_lo = max a.row_lo b.row_lo;
        row_hi = min a.row_hi b.row_hi;
        col_lo = max a.col_lo b.col_lo;
        col_hi = min a.col_hi b.col_hi;
      }

let is_subset a ~of_:b =
  a.row_lo >= b.row_lo && a.row_hi <= b.row_hi
  && a.col_lo >= b.col_lo && a.col_hi <= b.col_hi

let union_bound a b =
  {
    row_lo = min a.row_lo b.row_lo;
    row_hi = max a.row_hi b.row_hi;
    col_lo = min a.col_lo b.col_lo;
    col_hi = max a.col_hi b.col_hi;
  }

let try_merge a b =
  if is_subset a ~of_:b then Some b
  else if is_subset b ~of_:a then Some a
  else if a.col_lo = b.col_lo && a.col_hi = b.col_hi
          && a.row_lo <= b.row_hi + 1 && b.row_lo <= a.row_hi + 1 then
    Some (union_bound a b)
  else if a.row_lo = b.row_lo && a.row_hi = b.row_hi
          && a.col_lo <= b.col_hi + 1 && b.col_lo <= a.col_hi + 1 then
    Some (union_bound a b)
  else None

let cells t =
  let out = ref [] in
  for row = t.row_hi downto t.row_lo do
    for col = t.col_hi downto t.col_lo do
      out := (row, col) :: !out
    done
  done;
  !out

(* Greedy maximal-strip cover: group cells by row into maximal column
   intervals, then merge vertically adjacent identical intervals. *)
let cover_of_cells cell_list =
  let module IS = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let cs = IS.of_list cell_list in
  if IS.is_empty cs then []
  else begin
    (* horizontal strips per row *)
    let strips = Hashtbl.create 16 in
    (* row -> (col_lo, col_hi) list *)
    let rows_seen = ref [] in
    IS.iter
      (fun (row, col) ->
        match Hashtbl.find_opt strips row with
        | None ->
            Hashtbl.add strips row [ (col, col) ];
            rows_seen := row :: !rows_seen
        | Some intervals -> (
            match intervals with
            | (lo, hi) :: rest when col = hi + 1 ->
                Hashtbl.replace strips row ((lo, col) :: rest)
            | _ -> Hashtbl.replace strips row ((col, col) :: intervals)))
      cs;
    (* vertical merge of identical strips in consecutive rows *)
    let rows = List.sort compare !rows_seen in
    let open_rects = Hashtbl.create 16 in
    (* (col_lo, col_hi) -> row_lo * last_row *)
    let finished = ref [] in
    let flush_stale current_row =
      let stale = ref [] in
      Hashtbl.iter
        (fun key (row_lo, last_row) ->
          if last_row < current_row - 1 then stale := (key, (row_lo, last_row)) :: !stale)
        open_rects;
      List.iter
        (fun (((col_lo, col_hi) as key), (row_lo, last_row)) ->
          finished := make ~row_lo ~row_hi:last_row ~col_lo ~col_hi :: !finished;
          Hashtbl.remove open_rects key)
        !stale
    in
    List.iter
      (fun row ->
        flush_stale row;
        let intervals = List.rev (Hashtbl.find strips row) in
        List.iter
          (fun ((col_lo, col_hi) as key) ->
            match Hashtbl.find_opt open_rects key with
            | Some (row_lo, last_row) when last_row = row - 1 ->
                Hashtbl.replace open_rects key (row_lo, row)
            | Some (row_lo, last_row) ->
                finished := make ~row_lo ~row_hi:last_row ~col_lo ~col_hi :: !finished;
                Hashtbl.replace open_rects key (row, row)
            | None -> Hashtbl.add open_rects key (row, row))
          intervals)
      rows;
    Hashtbl.iter
      (fun (col_lo, col_hi) (row_lo, last_row) ->
        finished := make ~row_lo ~row_hi:last_row ~col_lo ~col_hi :: !finished)
      open_rects;
    List.sort compare !finished
  end

let subtract a b =
  match intersection a b with
  | None -> [ a ]
  | Some i ->
      let out = ref [] in
      (* rows above the hole *)
      if a.row_lo < i.row_lo then
        out := { a with row_hi = i.row_lo - 1 } :: !out;
      (* rows below the hole *)
      if a.row_hi > i.row_hi then
        out := { a with row_lo = i.row_hi + 1 } :: !out;
      (* left of the hole, within the hole's row span *)
      if a.col_lo < i.col_lo then
        out :=
          { row_lo = i.row_lo; row_hi = i.row_hi; col_lo = a.col_lo; col_hi = i.col_lo - 1 }
          :: !out;
      (* right of the hole *)
      if a.col_hi > i.col_hi then
        out :=
          { row_lo = i.row_lo; row_hi = i.row_hi; col_lo = i.col_hi + 1; col_hi = a.col_hi }
          :: !out;
      List.rev !out

let equal = ( = )
let compare = compare

let pp fmt t =
  Format.fprintf fmt "[r%d..%d, c%d..%d]" t.row_lo t.row_hi t.col_lo t.col_hi

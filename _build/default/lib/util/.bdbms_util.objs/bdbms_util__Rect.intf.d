lib/util/rect.mli: Format

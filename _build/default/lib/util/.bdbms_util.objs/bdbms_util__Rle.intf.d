lib/util/rle.mli: Format

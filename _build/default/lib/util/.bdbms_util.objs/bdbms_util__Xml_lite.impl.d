lib/util/xml_lite.ml: Buffer Hashtbl List Printf String

lib/util/idgen.mli:

lib/util/prng.mli:

lib/util/rect.ml: Format Hashtbl List Set

lib/util/rle.ml: Array Buffer Char Format List String

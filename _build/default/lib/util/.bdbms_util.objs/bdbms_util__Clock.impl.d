lib/util/clock.ml: Format

lib/util/bwt.mli:

lib/util/xml_lite.mli:

lib/util/idgen.ml:

lib/util/bwt.ml: Array Buffer Bytes Char Fun Hashtbl List Result String

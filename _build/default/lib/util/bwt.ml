type transformed = { last_column : string; primary : int }

let transform s =
  let n = String.length s in
  if n = 0 then { last_column = ""; primary = 0 }
  else begin
    let rotations = Array.init n Fun.id in
    (* compare rotations i and j lexicographically *)
    let cmp i j =
      if i = j then 0
      else begin
        let rec go k =
          if k >= n then 0
          else
            let c = Char.compare s.[(i + k) mod n] s.[(j + k) mod n] in
            if c <> 0 then c else go (k + 1)
        in
        go 0
      end
    in
    Array.sort cmp rotations;
    let primary = ref 0 in
    Array.iteri (fun row start -> if start = 0 then primary := row) rotations;
    let last_column =
      String.init n (fun row -> s.[(rotations.(row) + n - 1) mod n])
    in
    { last_column; primary = !primary }
  end

let inverse { last_column; primary } =
  let n = String.length last_column in
  if n = 0 then ""
  else begin
    (* LF mapping: for each position in the last column, where its
       character goes in the first column *)
    let counts = Array.make 256 0 in
    String.iter (fun c -> counts.(Char.code c) <- counts.(Char.code c) + 1) last_column;
    let firsts = Array.make 256 0 in
    let acc = ref 0 in
    for c = 0 to 255 do
      firsts.(c) <- !acc;
      acc := !acc + counts.(c)
    done;
    let seen = Array.make 256 0 in
    let lf = Array.make n 0 in
    String.iteri
      (fun i c ->
        let code = Char.code c in
        lf.(i) <- firsts.(code) + seen.(code);
        seen.(code) <- seen.(code) + 1)
      last_column;
    (* walk backwards from the primary row *)
    let out = Bytes.make n ' ' in
    let row = ref primary in
    for k = n - 1 downto 0 do
      Bytes.set out k last_column.[!row];
      row := lf.(!row)
    done;
    Bytes.to_string out
  end

let mtf_encode s =
  let table = Array.init 256 Char.chr in
  String.map
    (fun c ->
      let rec find i = if table.(i) = c then i else find (i + 1) in
      let idx = find 0 in
      (* move to front *)
      for j = idx downto 1 do
        table.(j) <- table.(j - 1)
      done;
      table.(0) <- c;
      Char.chr idx)
    s

let mtf_decode s =
  let table = Array.init 256 Char.chr in
  String.map
    (fun ic ->
      let idx = Char.code ic in
      let c = table.(idx) in
      for j = idx downto 1 do
        table.(j) <- table.(j - 1)
      done;
      table.(0) <- c;
      c)
    s

let add_u32 buf n =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let read_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

(* ---------------------------------------------------------------------
   Order-0 canonical Huffman coder: the entropy stage of the pipeline.
   Header: 256 code lengths (one byte each) + u32 symbol count, then the
   padded bitstream. *)

module Huffman = struct
  let code_lengths freqs =
    (* standard two-least-merge; alphabet is tiny so O(n^2) is fine *)
    let nodes = ref [] in
    Array.iteri (fun sym f -> if f > 0 then nodes := (f, `Leaf sym) :: !nodes) freqs;
    let lengths = Array.make 256 0 in
    (match !nodes with
    | [] -> ()
    | [ (_, `Leaf sym) ] -> lengths.(sym) <- 1
    | _ ->
        let rec build nodes =
          match List.sort (fun (fa, _) (fb, _) -> compare fa fb) nodes with
          | (fa, ta) :: (fb, tb) :: rest -> build ((fa + fb, `Node (ta, tb)) :: rest)
          | [ (_, root) ] ->
              let rec assign depth = function
                | `Leaf sym -> lengths.(sym) <- depth
                | `Node (a, b) ->
                    assign (depth + 1) a;
                    assign (depth + 1) b
              in
              assign 0 root
          | [] -> ()
        in
        build !nodes);
    lengths

  (* canonical codes from lengths: symbols sorted by (length, symbol) *)
  let canonical_codes lengths =
    let symbols =
      List.init 256 Fun.id
      |> List.filter (fun s -> lengths.(s) > 0)
      |> List.sort (fun a b ->
             compare (lengths.(a), a) (lengths.(b), b))
    in
    let codes = Array.make 256 (0, 0) in
    let code = ref 0 and prev_len = ref 0 in
    List.iter
      (fun sym ->
        let len = lengths.(sym) in
        code := !code lsl (len - !prev_len);
        codes.(sym) <- (!code, len);
        incr code;
        prev_len := len)
      symbols;
    codes

  let encode s =
    let freqs = Array.make 256 0 in
    String.iter (fun c -> freqs.(Char.code c) <- freqs.(Char.code c) + 1) s;
    let lengths = code_lengths freqs in
    let codes = canonical_codes lengths in
    let buf = Buffer.create (String.length s / 2) in
    Array.iter (fun l -> Buffer.add_char buf (Char.chr (min 255 l))) lengths;
    add_u32 buf (String.length s);
    (* bitstream, MSB first *)
    let acc = ref 0 and nbits = ref 0 in
    String.iter
      (fun c ->
        let code, len = codes.(Char.code c) in
        for i = len - 1 downto 0 do
          acc := (!acc lsl 1) lor ((code lsr i) land 1);
          incr nbits;
          if !nbits = 8 then begin
            Buffer.add_char buf (Char.chr !acc);
            acc := 0;
            nbits := 0
          end
        done)
      s;
    if !nbits > 0 then Buffer.add_char buf (Char.chr (!acc lsl (8 - !nbits)));
    Buffer.contents buf

  let decode packed =
    if String.length packed < 260 then Error "truncated Huffman payload"
    else begin
      let lengths = Array.init 256 (fun i -> Char.code packed.[i]) in
      let n = read_u32 packed 256 in
      let codes = canonical_codes lengths in
      (* decode table: (len, code) -> symbol *)
      let table = Hashtbl.create 256 in
      Array.iteri
        (fun sym (code, len) -> if lengths.(sym) > 0 then Hashtbl.replace table (len, code) sym)
        codes;
      let out = Buffer.create n in
      let pos = ref 260 and bit = ref 7 in
      let code = ref 0 and len = ref 0 in
      let ok = ref true in
      while Buffer.length out < n && !ok do
        if !pos >= String.length packed then ok := false
        else begin
          let b = (Char.code packed.[!pos] lsr !bit) land 1 in
          code := (!code lsl 1) lor b;
          incr len;
          (if !bit = 0 then begin
             bit := 7;
             incr pos
           end
           else decr bit);
          match Hashtbl.find_opt table (!len, !code) with
          | Some sym ->
              Buffer.add_char out (Char.chr sym);
              code := 0;
              len := 0
          | None -> if !len > 64 then ok := false
        end
      done;
      if !ok then Ok (Buffer.contents out) else Error "corrupt Huffman payload"
    end
end

(* byte-level RLE: runs encoded as (byte, count<=255) pairs *)
let rle_bytes s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let j = ref !i in
    while !j < n && s.[!j] = c && !j - !i < 254 do
      incr j
    done;
    Buffer.add_char buf c;
    Buffer.add_char buf (Char.chr (!j - !i));
    i := !j
  done;
  Buffer.contents buf

let unrle_bytes s =
  if String.length s mod 2 <> 0 then Error "corrupt byte-RLE payload"
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i < String.length s do
      Buffer.add_string buf (String.make (Char.code s.[!i + 1]) s.[!i]);
      i := !i + 2
    done;
    Ok (Buffer.contents buf)
  end

let compress s =
  if String.contains s '\000' then
    invalid_arg "Bwt.compress: input must not contain NUL bytes";
  (* the sentinel makes the rotation sort unambiguous for periodic inputs *)
  let { last_column; primary } = transform (s ^ "\000") in
  let payload = Huffman.encode (rle_bytes (mtf_encode last_column)) in
  let buf = Buffer.create (String.length payload + 8) in
  add_u32 buf (String.length s);
  add_u32 buf primary;
  Buffer.add_string buf payload;
  Buffer.contents buf

let decompress packed =
  if String.length packed < 8 then Error "truncated BWT payload"
  else begin
    let n = read_u32 packed 0 in
    let primary = read_u32 packed 4 in
    let payload = String.sub packed 8 (String.length packed - 8) in
    let ( let* ) = Result.bind in
    let* rle = Huffman.decode payload in
    match unrle_bytes rle with
    | Error _ as e -> e
    | Ok mtf ->
        if String.length mtf <> n + 1 then Error "BWT length mismatch"
        else begin
          let with_sentinel = inverse { last_column = mtf_decode mtf; primary } in
          if String.length with_sentinel = n + 1 && with_sentinel.[n] = '\000' then
            Ok (String.sub with_sentinel 0 n)
          else Error "BWT sentinel mismatch"
        end
  end

let compressed_size s = String.length (compress s)

let ratio s =
  if s = "" then 1.0
  else float_of_int (String.length s) /. float_of_int (compressed_size s)

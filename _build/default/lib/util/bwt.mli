(** Burrows–Wheeler compression pipeline.

    Section 7.2's future work: "Compression techniques like gzip and
    Burrows-Wheeler Transform (BWT) can be more effective in compressing
    the other kinds of data" than RLE.  This module implements the classic
    BWT → move-to-front → byte-RLE pipeline so the benchmarks can compare
    compressibility of DNA (no long runs: RLE useless, BWT effective)
    against secondary structures (long runs: RLE already optimal). *)

type transformed = { last_column : string; primary : int }
(** The BWT of a string: the last column of the sorted rotation matrix and
    the index of the original string's row. *)

val transform : string -> transformed
(** O(n² log n) rotation sort — intended for sequence-sized inputs. *)

val inverse : transformed -> string

val mtf_encode : string -> string
(** Move-to-front over the byte alphabet. *)

val mtf_decode : string -> string

val compress : string -> string
(** BWT (with a NUL sentinel, so periodic inputs round-trip) → MTF →
    byte-level RLE → canonical Huffman, with a self-describing header.
    [decompress (compress s) = s].
    @raise Invalid_argument if the input contains NUL bytes. *)

val decompress : string -> (string, string) result

val compressed_size : string -> int
(** [String.length (compress s)]. *)

val ratio : string -> float
(** Input length / compressed length (>= 1 when compression helps). *)

module Table = Bdbms_relation.Table
module Catalog = Bdbms_relation.Catalog
module Expr = Bdbms_relation.Expr
module Manager = Bdbms_annotation.Manager
module Ann_store = Bdbms_annotation.Ann_store

type estimate = { rows : float; pages : float }

(* selectivity heuristics *)
let rec selectivity = function
  | Expr.Cmp (Expr.Eq, _, _) -> 0.10
  | Expr.Cmp (Expr.Neq, _, _) -> 0.90
  | Expr.Cmp ((Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq), _, _) -> 0.30
  | Expr.Like _ -> 0.25
  | Expr.In_list (_, vs) -> Float.min 0.9 (0.10 *. float_of_int (List.length vs))
  | Expr.Is_null _ -> 0.05
  | Expr.And (a, b) -> selectivity a *. selectivity b
  | Expr.Or (a, b) ->
      let sa = selectivity a and sb = selectivity b in
      sa +. sb -. (sa *. sb)
  | Expr.Not a -> 1.0 -. selectivity a
  | Expr.Lit _ | Expr.Col _ | Expr.Arith _ | Expr.Concat _ -> 0.5

let awhere_selectivity = 0.5
let distinct_factor = 0.8

type node = { label : string; est : estimate; children : node list }

let scan_node (ctx : Context.t) (f : Ast.from_item) =
  match Catalog.find ctx.catalog f.Ast.table with
  | None ->
      {
        label = Printf.sprintf "SCAN %s  (unknown table!)" f.Ast.table;
        est = { rows = 0.0; pages = 0.0 };
        children = [];
      }
  | Some table ->
      let rows = float_of_int (Table.live_count table) in
      let pages = float_of_int (Table.storage_pages table) in
      let ann_pages, ann_label =
        match f.Ast.ann_tables with
        | None -> (0.0, "")
        | Some names ->
            let names =
              if names = [ "*" ] then
                Manager.annotation_table_names ctx.ann ~table_name:f.Ast.table
              else names
            in
            let pages =
              List.fold_left
                (fun acc n ->
                  match Manager.store_of ctx.ann ~table_name:f.Ast.table ~name:n with
                  | Some store ->
                      acc
                      +. float_of_int (Ann_store.storage_pages store)
                      +. float_of_int (Ann_store.index_pages store)
                  | None -> acc)
                0.0 names
            in
            (* an unindexed annotation lookup rescans the store per row *)
            (pages *. Float.max 1.0 rows, Printf.sprintf " ANNOTATION(%s)" (String.concat "," names))
      in
      {
        label = Printf.sprintf "SCAN %s%s" f.Ast.table ann_label;
        est = { rows; pages = pages +. ann_pages };
        children = [];
      }

(* top-level equality columns of a WHERE expression *)
let rec equality_columns = function
  | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Lit _) | Expr.Cmp (Expr.Eq, Expr.Lit _, Expr.Col c)
    ->
      [ c ]
  | Expr.And (a, b) -> equality_columns a @ equality_columns b
  | _ -> []

let index_for ctx (f : Ast.from_item) where =
  match where with
  | None -> None
  | Some e ->
      let eq_cols = List.map String.lowercase_ascii (equality_columns e) in
      Context.indexes_on ctx ~table:f.Ast.table
      |> List.find_opt (fun (idx : Context.index_def) ->
             List.exists
               (fun c ->
                 c = String.lowercase_ascii idx.Context.idx_column
                 || c
                    = String.lowercase_ascii
                        (Option.value f.Ast.table_alias ~default:f.Ast.table)
                      ^ "_"
                      ^ String.lowercase_ascii idx.Context.idx_column)
               eq_cols)

let rec select_node ctx (sel : Ast.select) =
  let single = List.length sel.Ast.from = 1 in
  let scans =
    List.map
      (fun f ->
        match (single, index_for ctx f sel.Ast.where) with
        | true, Some idx ->
            let base = scan_node ctx f in
            {
              base with
              label =
                Printf.sprintf "INDEX SCAN %s via %s(%s)" f.Ast.table
                  idx.Context.idx_name idx.Context.idx_column;
              est =
                {
                  rows = base.est.rows *. 0.10;
                  pages = Float.min base.est.pages 4.0;
                };
            }
        | _ -> scan_node ctx f)
      sel.Ast.from
  in
  let joined =
    match scans with
    | [] -> { label = "EMPTY"; est = { rows = 0.0; pages = 0.0 }; children = [] }
    | [ s ] -> s
    | first :: rest ->
        List.fold_left
          (fun acc s ->
            {
              label = "NESTED-LOOP JOIN";
              est =
                {
                  rows = acc.est.rows *. s.est.rows;
                  pages = acc.est.pages +. s.est.pages;
                };
              children = [ acc; s ];
            })
          first rest
  in
  let with_where =
    match sel.Ast.where with
    | None -> joined
    | Some e ->
        let sel_f = selectivity e in
        {
          label = Printf.sprintf "WHERE (selectivity %.2f)" sel_f;
          est = { joined.est with rows = joined.est.rows *. sel_f };
          children = [ joined ];
        }
  in
  let with_awhere =
    match sel.Ast.awhere with
    | None -> with_where
    | Some p ->
        {
          label = Format.asprintf "AWHERE %a" Bdbms_annotation.Ann_pred.pp p;
          est = { with_where.est with rows = with_where.est.rows *. awhere_selectivity };
          children = [ with_where ];
        }
  in
  let with_group =
    if sel.Ast.group_by = [] then with_awhere
    else
      let groups = Float.max 1.0 (with_awhere.est.rows /. 10.0) in
      {
        label = Printf.sprintf "GROUP BY %s" (String.concat "," sel.Ast.group_by);
        est = { with_awhere.est with rows = groups };
        children = [ with_awhere ];
      }
  in
  let projected =
    let item_count = List.length sel.Ast.items in
    {
      label =
        (if sel.Ast.items = [ Ast.Star ] then "PROJECT *"
         else Printf.sprintf "PROJECT (%d items)" item_count);
      est = with_group.est;
      children = [ with_group ];
    }
  in
  let with_filter =
    match sel.Ast.filter with
    | None -> projected
    | Some p ->
        {
          label = Format.asprintf "FILTER %a" Bdbms_annotation.Ann_pred.pp p;
          est = projected.est;
          children = [ projected ];
        }
  in
  if sel.Ast.distinct then
    {
      label = "DISTINCT";
      est = { with_filter.est with rows = with_filter.est.rows *. distinct_factor };
      children = [ with_filter ];
    }
  else with_filter

and query_node ctx = function
  | Ast.Select sel -> select_node ctx sel
  | Ast.Union (a, b) ->
      let na = query_node ctx a and nb = query_node ctx b in
      {
        label = "UNION";
        est = { rows = na.est.rows +. nb.est.rows; pages = na.est.pages +. nb.est.pages };
        children = [ na; nb ];
      }
  | Ast.Intersect (a, b) ->
      let na = query_node ctx a and nb = query_node ctx b in
      {
        label = "INTERSECT";
        est =
          {
            rows = Float.min na.est.rows nb.est.rows *. 0.5;
            pages = na.est.pages +. nb.est.pages;
          };
        children = [ na; nb ];
      }
  | Ast.Except (a, b) ->
      let na = query_node ctx a and nb = query_node ctx b in
      {
        label = "EXCEPT";
        est = { rows = na.est.rows *. 0.5; pages = na.est.pages +. nb.est.pages };
        children = [ na; nb ];
      }

let estimate_query ctx q = (query_node ctx q).est

let explain ctx q =
  let buf = Buffer.create 256 in
  let rec render prefix is_last node =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (if prefix = "" then "" else if is_last then "`- " else "|- ");
    Buffer.add_string buf
      (Printf.sprintf "%s  (est. rows=%.0f, pages=%.0f)\n" node.label node.est.rows
         node.est.pages);
    let child_prefix =
      if prefix = "" then "  " else prefix ^ (if is_last then "   " else "|  ")
    in
    let rec go = function
      | [] -> ()
      | [ c ] -> render child_prefix true c
      | c :: rest ->
          render child_prefix false c;
          go rest
    in
    go node.children
  in
  render "" true (query_node ctx q);
  Buffer.contents buf

(** Cost estimation for A-SQL plans.

    Section 3.4 leaves "for each A-SQL operator its algebraic definition,
    cost estimate function, and algebraic properties" as an open issue;
    this module supplies the cost-estimate part: per-operator cardinality
    and page-access estimates from catalog statistics, rendered as an
    EXPLAIN tree.  Estimates use textbook selectivity heuristics
    (equality 10%, range 30%, LIKE 25%, AWHERE 50%). *)

type estimate = {
  rows : float;     (** estimated output cardinality *)
  pages : float;    (** estimated page accesses *)
}

val estimate_query : Context.t -> Ast.query -> estimate
(** Root estimate (errors on unknown tables are folded into 0-cost
    leaves so EXPLAIN never fails on a typo — the tree shows the
    problem). *)

val explain : Context.t -> Ast.query -> string
(** The full plan tree with per-operator estimates. *)

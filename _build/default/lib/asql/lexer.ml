type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Symbol of string
  | Eof

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let tokens = ref [] in
  let error = ref None in
  let emit t = tokens := t :: !tokens in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !error = None && !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      emit (Ident (String.sub src start (!pos - start)))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let is_float =
        !pos + 1 < n && src.[!pos] = '.' && is_digit src.[!pos + 1]
      in
      if is_float then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        (* exponent *)
        if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
          incr pos;
          if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
          while !pos < n && is_digit src.[!pos] do
            incr pos
          done
        end;
        emit (Float_lit (float_of_string (String.sub src start (!pos - start))))
      end
      else if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E')
              && (match peek 1 with
                 | Some d when is_digit d -> true
                 | Some ('+' | '-') -> (match peek 2 with Some d -> is_digit d | None -> false)
                 | _ -> false)
      then begin
        incr pos;
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        emit (Float_lit (float_of_string (String.sub src start (!pos - start))))
      end
      else emit (Int_lit (int_of_string (String.sub src start (!pos - start))))
    end
    else if c = '\'' then begin
      (* string literal with '' escape *)
      incr pos;
      let buf = Buffer.create 16 in
      let finished = ref false in
      while (not !finished) && !error = None do
        if !pos >= n then error := Some "unterminated string literal"
        else if src.[!pos] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2
          end
          else begin
            incr pos;
            finished := true
          end
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos
        end
      done;
      if !error = None then emit (String_lit (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "||" | "!=" ->
          emit (Symbol (if two = "!=" then "<>" else two));
          pos := !pos + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | ';' | '=' | '<' | '>' | '+' | '-' | '*' | '/' | '%' ->
              emit (Symbol (String.make 1 c));
              incr pos
          | c -> error := Some (Printf.sprintf "unexpected character %C" c))
    end
  done;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev (Eof :: !tokens))

let token_text = function
  | Ident s -> s
  | Int_lit n -> string_of_int n
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "'%s'" s
  | Symbol s -> s
  | Eof -> "<eof>"

let pp_token fmt t = Format.pp_print_string fmt (token_text t)

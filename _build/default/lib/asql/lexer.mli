(** Tokenizer for A-SQL.

    Keywords are case-insensitive; identifiers keep their case; string
    literals use single quotes with [''] escaping. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Symbol of string
      (** one of ( ) , . ; = <> < <= > >= + - * / % || *)
  | Eof

val tokenize : string -> (token list, string) result

val pp_token : Format.formatter -> token -> unit
val token_text : token -> string

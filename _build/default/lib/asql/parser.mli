(** Recursive-descent parser for A-SQL.

    Accepts standard SQL plus the paper's extensions: the A-SQL SELECT of
    Figure 7 (ANNOTATION / PROMOTE / AWHERE / AHAVING / FILTER), the
    annotation commands of Figures 4 and 6 (CREATE / DROP ANNOTATION
    TABLE, ADD / ARCHIVE / RESTORE ANNOTATION), the content-approval
    commands of Figure 11 (START / STOP CONTENT APPROVAL, APPROVE /
    DISAPPROVE), GRANT / REVOKE, and dependency DDL (CREATE / LINK
    DEPENDENCY, VALIDATE, SHOW OUTDATED).

    Annotation conditions (AWHERE / AHAVING / FILTER) use the form
    [ANN CONTAINS 'x'], [ANN AUTHOR = 'u'], [ANN CATEGORY = 'c'],
    [ANN ADDED BEFORE t], [ANN ADDED AFTER t], [ANN PATH 'a/b' = 'v'],
    combined with AND / OR / NOT and parentheses.

    In multi-table SELECTs, reference columns as [alias.column] (columns
    are internally prefixed with the table alias). *)

val parse : string -> (Ast.statement, string) result
(** Parse one statement (a trailing [;] is allowed). *)

val parse_multi : string -> (Ast.statement list, string) result
(** Parse a [;]-separated script. *)

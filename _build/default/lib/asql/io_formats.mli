(** Bulk import/export formats: CSV and FASTA.

    The paper's driving applications ingest flat files ("biologists tend to
    store their data in flat files or spreadsheets") — these are the
    loaders that bring that data into its natural habitat.  CSV follows
    RFC-4180-style quoting; FASTA is the standard [>id description]
    sequence format. *)

(** {1 CSV} *)

val parse_csv : string -> (string list list, string) result
(** Parse CSV text into rows of fields.  Handles quoted fields (["..."]
    with [""] escapes), embedded commas and newlines, and both LF and
    CRLF line endings.  Empty trailing lines are dropped. *)

val to_csv : string list list -> string
(** Render rows as CSV, quoting where needed; [parse_csv (to_csv rows) =
    Ok rows]. *)

(** {1 FASTA} *)

type fasta_record = { id : string; description : string; sequence : string }

val parse_fasta : string -> (fasta_record list, string) result
(** Parse FASTA text: [>id description] header lines followed by sequence
    lines (whitespace stripped, multiple lines concatenated). *)

val to_fasta : ?width:int -> fasta_record list -> string
(** Render records, wrapping sequences at [width] (default 70) columns. *)

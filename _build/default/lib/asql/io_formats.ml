(* --------------------------------------------------------------- CSV *)

let parse_csv src =
  let n = String.length src in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let pos = ref 0 in
  let error = ref None in
  let end_field () = fields := Buffer.contents buf :: !fields; Buffer.clear buf in
  let end_row () =
    end_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let in_quotes = ref false in
  let row_started = ref false in
  while !error = None && !pos < n do
    let c = src.[!pos] in
    if !in_quotes then begin
      if c = '"' then
        if !pos + 1 < n && src.[!pos + 1] = '"' then begin
          Buffer.add_char buf '"';
          pos := !pos + 2
        end
        else begin
          in_quotes := false;
          incr pos
        end
      else begin
        Buffer.add_char buf c;
        incr pos
      end
    end
    else
      match c with
      | '"' ->
          if Buffer.length buf = 0 then begin
            in_quotes := true;
            row_started := true;
            incr pos
          end
          else begin
            error := Some (Printf.sprintf "stray quote at offset %d" !pos)
          end
      | ',' ->
          end_field ();
          row_started := true;
          incr pos
      | '\r' -> incr pos
      | '\n' ->
          if !row_started || Buffer.length buf > 0 || !fields <> [] then end_row ();
          row_started := false;
          incr pos
      | c ->
          Buffer.add_char buf c;
          row_started := true;
          incr pos
  done;
  if !error = None && !in_quotes then error := Some "unterminated quoted field";
  match !error with
  | Some e -> Error e
  | None ->
      if !row_started || Buffer.length buf > 0 || !fields <> [] then end_row ();
      Ok (List.rev !rows)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let to_csv rows =
  let field s =
    if needs_quoting s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  String.concat ""
    (List.map (fun row -> String.concat "," (List.map field row) ^ "\n") rows)

(* -------------------------------------------------------------- FASTA *)

type fasta_record = { id : string; description : string; sequence : string }

let parse_fasta src =
  let lines = String.split_on_char '\n' src in
  let records = ref [] in
  let current = ref None in
  let error = ref None in
  let flush () =
    match !current with
    | Some (id, description, buf) ->
        records := { id; description; sequence = Buffer.contents buf } :: !records;
        current := None
    | None -> ()
  in
  List.iter
    (fun line ->
      if !error = None then begin
        let line = String.trim line in
        if line = "" then ()
        else if line.[0] = '>' then begin
          flush ();
          let header = String.sub line 1 (String.length line - 1) in
          let id, description =
            match String.index_opt header ' ' with
            | Some i ->
                ( String.sub header 0 i,
                  String.trim (String.sub header (i + 1) (String.length header - i - 1)) )
            | None -> (String.trim header, "")
          in
          if id = "" then error := Some "FASTA header with empty id"
          else current := Some (id, description, Buffer.create 64)
        end
        else
          match !current with
          | None -> error := Some "FASTA sequence data before any header"
          | Some (_, _, buf) ->
              String.iter (fun c -> if c <> ' ' && c <> '\t' then Buffer.add_char buf c) line
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      flush ();
      Ok (List.rev !records)

let to_fasta ?(width = 70) records =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_char buf '>';
      Buffer.add_string buf r.id;
      if r.description <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf r.description
      end;
      Buffer.add_char buf '\n';
      let n = String.length r.sequence in
      let pos = ref 0 in
      while !pos < n do
        let len = min width (n - !pos) in
        Buffer.add_string buf (String.sub r.sequence !pos len);
        Buffer.add_char buf '\n';
        pos := !pos + len
      done;
      if n = 0 then Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

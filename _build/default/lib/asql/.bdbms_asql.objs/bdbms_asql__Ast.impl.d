lib/asql/ast.ml: Bdbms_annotation Bdbms_auth Bdbms_relation

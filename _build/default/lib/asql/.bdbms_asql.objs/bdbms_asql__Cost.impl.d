lib/asql/cost.ml: Ast Bdbms_annotation Bdbms_relation Buffer Context Float Format List Option Printf String

lib/asql/io_formats.mli:

lib/asql/ast.mli: Bdbms_annotation Bdbms_auth Bdbms_relation

lib/asql/lexer.mli: Format

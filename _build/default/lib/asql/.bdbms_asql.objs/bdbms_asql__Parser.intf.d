lib/asql/parser.mli: Ast

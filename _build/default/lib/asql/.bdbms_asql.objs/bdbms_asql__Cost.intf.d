lib/asql/cost.mli: Ast Context

lib/asql/context.ml: Bdbms_annotation Bdbms_auth Bdbms_dependency Bdbms_index Bdbms_provenance Bdbms_relation Bdbms_storage Bdbms_util Hashtbl List String

lib/asql/io_formats.ml: Buffer List Printf String

lib/asql/lexer.ml: Buffer Format List Printf String

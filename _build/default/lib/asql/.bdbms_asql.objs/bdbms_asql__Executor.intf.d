lib/asql/executor.mli: Ast Bdbms_annotation Bdbms_auth Context

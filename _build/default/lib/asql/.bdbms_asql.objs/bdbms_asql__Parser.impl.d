lib/asql/parser.ml: Array Ast Bdbms_annotation Bdbms_auth Bdbms_relation Lexer List Printf String

lib/auth/approval.ml: Acl Bdbms_relation Bdbms_util Hashtbl List Option Principal Printf String

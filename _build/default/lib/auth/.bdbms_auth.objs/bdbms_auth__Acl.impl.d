lib/auth/acl.ml: Hashtbl List Option Principal Printf String

lib/auth/approval.mli: Acl Bdbms_relation Bdbms_util Principal

lib/auth/acl.mli: Principal

lib/auth/principal.mli:

lib/auth/principal.ml: Hashtbl List Printf String

(** Structured provenance records (Section 4).

    Unlike free-text annotations, provenance has a well-defined structure:
    where a value came from (source database/table, or a local operation,
    or a generating program), who caused it, and when.  Records marshal
    to/from a fixed XML shape that is enforced with a schema — the paper's
    requirement that provenance follow a predefined XML schema the system
    validates. *)

type operation =
  | Copied_from of { db : string; table : string }
      (** data imported from an external source (Figure 8's S1/S2/S3) *)
  | Local_insert
  | Local_update
  | Generated_by of { program : string; version : string }
      (** value produced by a tool, e.g. BLAST (Figure 9b) *)
  | Overwritten_from of { db : string; table : string }

type t = {
  operation : operation;
  actor : string;  (** user or integration tool that performed it *)
  at : Bdbms_util.Clock.time;
}

val make : operation:operation -> actor:string -> at:Bdbms_util.Clock.time -> t

val to_xml : t -> Bdbms_util.Xml_lite.t
(** Root element [<provenance>] with [<operation>], [<actor>], [<time>]
    children; source/program details become attributes. *)

val of_xml : Bdbms_util.Xml_lite.t -> (t, string) result

val xml_schema : Bdbms_util.Xml_lite.Schema.schema
(** The schema every provenance body must satisfy. *)

val source_name : t -> string option
(** The external database name, when the operation has one. *)

val describe : t -> string
val pp : Format.formatter -> t -> unit

lib/provenance/prov_record.ml: Bdbms_util Format List Printf Result String

lib/provenance/prov_store.ml: Bdbms_annotation Bdbms_relation Hashtbl List Printf Prov_record

lib/provenance/prov_record.mli: Bdbms_util Format

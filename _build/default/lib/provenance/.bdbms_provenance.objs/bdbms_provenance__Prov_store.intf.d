lib/provenance/prov_store.mli: Bdbms_annotation Bdbms_relation Bdbms_util Prov_record

lib/sbc/string_btree.mli: Bdbms_storage Text_store

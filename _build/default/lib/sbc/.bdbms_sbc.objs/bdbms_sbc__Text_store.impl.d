lib/sbc/text_store.ml: Array Bdbms_storage Buffer String

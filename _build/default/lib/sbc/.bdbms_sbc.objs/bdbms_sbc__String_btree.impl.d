lib/sbc/string_btree.ml: Bdbms_index Char List String Text_store

lib/sbc/sbc_tree.mli: Bdbms_storage Bdbms_util Text_store

lib/sbc/sbc_tree.ml: Array Bdbms_index Bdbms_util Buffer Char Fun List String Text_store

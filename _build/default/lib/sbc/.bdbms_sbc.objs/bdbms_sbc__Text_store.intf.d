lib/sbc/text_store.mli: Bdbms_storage

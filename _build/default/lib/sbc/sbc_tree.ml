module Rle = Bdbms_util.Rle
module Btree = Bdbms_index.Btree
module Rtree = Bdbms_index.Rtree

type occurrence = { seq : Text_store.seq_id; pos : int }

(* Per-sequence metadata kept in the (in-memory) directory: raw offsets of
   each run, raw length. *)
type seq_meta = { run_offsets : int array; raw_len : int }

type t = {
  text : Text_store.t; (* 5-byte run records: char + u32 BE length *)
  tree : Btree.t;
  three : Rtree.t option;
  mutable meta : seq_meta array;
  mutable nseq : int;
  (* dense entry table for R-tree payloads *)
  mutable entries : (int * int) array; (* entry id -> (seq, run_idx) *)
  mutable nentries : int;
}

let record_size = 5

let encode_ref seq run =
  let b n = String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff)) in
  b seq ^ b run

let decode_ref s =
  let b off =
    Char.code s.[off] lsl 24
    lor (Char.code s.[off + 1] lsl 16)
    lor (Char.code s.[off + 2] lsl 8)
    lor Char.code s.[off + 3]
  in
  (b 0, b 4)

let run_record_of_string s off =
  let ch = s.[off] in
  let len =
    Char.code s.[off + 1] lsl 24
    lor (Char.code s.[off + 2] lsl 16)
    lor (Char.code s.[off + 3] lsl 8)
    lor Char.code s.[off + 4]
  in
  (ch, len)

let string_of_run ch len =
  String.init record_size (fun i ->
      if i = 0 then ch else Char.chr ((len lsr (8 * (4 - i))) land 0xff))

(* run record [i] of sequence [seq], read through the paged store *)
let read_run_text text seq i =
  let s = Text_store.read text seq ~pos:(i * record_size) ~len:record_size in
  run_record_of_string s 0

let read_run t seq i = read_run_text t.text seq i

let run_count t seq = Text_store.length t.text seq / record_size

(* Normalized suffix stream of (seq, run): the run's character byte (its
   length dropped — that is the 3-sided dimension), then the raw record
   bytes of all subsequent runs.  Both parts read straight out of the run
   blob, so the stream needs no materialization. *)
let norm_length_text text seq run =
  let total = Text_store.length text seq in
  1 + (total - ((run + 1) * record_size))

let norm_read_text text seq run ~pos ~len =
  let buf = Buffer.create len in
  let remaining = ref len and cursor = ref pos in
  if !remaining > 0 && !cursor = 0 then begin
    let ch, _ = read_run_text text seq run in
    Buffer.add_char buf ch;
    incr cursor;
    decr remaining
  end;
  if !remaining > 0 then begin
    let under_pos = ((run + 1) * record_size) + (!cursor - 1) in
    Buffer.add_string buf (Text_store.read text seq ~pos:under_pos ~len:!remaining)
  end;
  Buffer.contents buf

let norm_length t seq run = norm_length_text t.text seq run
let norm_read t seq run ~pos ~len = norm_read_text t.text seq run ~pos ~len

let block = 64

let compare_norm text a b =
  let seq_a, run_a = decode_ref a and seq_b, run_b = decode_ref b in
  let len_a = norm_length_text text seq_a run_a
  and len_b = norm_length_text text seq_b run_b in
  let rec go off =
    if off >= len_a && off >= len_b then compare (seq_a, run_a) (seq_b, run_b)
    else if off >= len_a then -1
    else if off >= len_b then 1
    else begin
      let n = min block (min (len_a - off) (len_b - off)) in
      let sa = norm_read_text text seq_a run_a ~pos:off ~len:n in
      let sb = norm_read_text text seq_b run_b ~pos:off ~len:n in
      let c = String.compare sa sb in
      if c <> 0 then c else go (off + n)
    end
  in
  go 0

(* 0 when the normalized suffix starts with [query] *)
let compare_norm_pattern t key query =
  let seq, run = decode_ref key in
  let len = norm_length t seq run in
  let m = String.length query in
  let rec go off =
    if off >= m then 0
    else if off >= len then -1
    else begin
      let n = min block (min (m - off) (len - off)) in
      let s = norm_read t seq run ~pos:off ~len:n in
      let q = String.sub query off n in
      let c = String.compare s q in
      if c <> 0 then c else go (off + n)
    end
  in
  go 0

(* order-preserving embedding of the first 6 normalized bytes into a float
   (exact in a double's 53-bit mantissa) for the R-tree's X axis *)
let embed6 s =
  let v = ref 0.0 in
  for i = 0 to 5 do
    let b = if i < String.length s then Char.code s.[i] else 0 in
    v := (!v *. 256.0) +. float_of_int b
  done;
  !v

let embed6_hi s =
  let v = ref 0.0 in
  for i = 0 to 5 do
    let b = if i < String.length s then Char.code s.[i] else 0xff in
    v := (!v *. 256.0) +. float_of_int b
  done;
  !v

let create ?(with_three_sided = true) bp =
  let text = Text_store.create bp in
  {
    text;
    tree = Btree.create ~cmp:(compare_norm text) bp;
    three = (if with_three_sided then Some (Rtree.create bp) else None);
    meta = Array.make 16 { run_offsets = [||]; raw_len = 0 };
    nseq = 0;
    entries = Array.make 64 (0, 0);
    nentries = 0;
  }

let add_entry t seq run =
  if t.nentries >= Array.length t.entries then begin
    let entries = Array.make (2 * Array.length t.entries) (0, 0) in
    Array.blit t.entries 0 entries 0 t.nentries;
    t.entries <- entries
  end;
  t.entries.(t.nentries) <- (seq, run);
  t.nentries <- t.nentries + 1;
  t.nentries - 1

let insert_rle t rle =
  let runs = Rle.runs rle in
  let blob = Buffer.create (record_size * List.length runs) in
  let offsets = Array.make (List.length runs) 0 in
  let raw = ref 0 in
  List.iteri
    (fun i { Rle.ch; len } ->
      offsets.(i) <- !raw;
      raw := !raw + len;
      Buffer.add_string blob (string_of_run ch len))
    runs;
  let seq = Text_store.add t.text (Buffer.contents blob) in
  if t.nseq >= Array.length t.meta then begin
    let meta = Array.make (2 * Array.length t.meta) { run_offsets = [||]; raw_len = 0 } in
    Array.blit t.meta 0 meta 0 t.nseq;
    t.meta <- meta
  end;
  t.meta.(seq) <- { run_offsets = offsets; raw_len = !raw };
  t.nseq <- max t.nseq (seq + 1);
  List.iteri
    (fun run { Rle.len; _ } ->
      Btree.insert t.tree ~key:(encode_ref seq run) ~value:0;
      match t.three with
      | None -> ()
      | Some rt ->
          let eid = add_entry t seq run in
          let x = embed6 (norm_read t seq run ~pos:0 ~len:(min 6 (norm_length t seq run))) in
          Rtree.insert rt (Rtree.mbr_of_point ~x ~y:(float_of_int len)) eid)
    runs;
  seq

let insert t raw = insert_rle t (Rle.encode raw)

(* The normalized query bytes for a pattern with runs r1..rk:
   c1, then exact records for r2..r(k-1), then (when k >= 2) ck. *)
let query_bytes pruns =
  match pruns with
  | [] -> ""
  | { Rle.ch = c1; _ } :: rest ->
      let buf = Buffer.create 16 in
      Buffer.add_char buf c1;
      let rec go = function
        | [] -> ()
        | [ { Rle.ch; _ } ] -> Buffer.add_char buf ch (* last run: char only *)
        | { Rle.ch; len } :: more ->
            Buffer.add_string buf (string_of_run ch len);
            go more
      in
      go rest;
      Buffer.contents buf

(* Verify a candidate suffix start against the pattern runs and produce the
   raw match position; the middle runs are already guaranteed by the key
   probe, the first and last run lengths are not. *)
let verify t pruns seq run =
  match pruns with
  | [] -> None
  | [ { Rle.ch = c1; len = l1 } ] ->
      let ch, len = read_run t seq run in
      if ch = c1 && len >= l1 then
        Some { seq; pos = t.meta.(seq).run_offsets.(run) }
      else None
  | { Rle.ch = c1; len = l1 } :: rest ->
      let k = List.length pruns in
      if run + k > run_count t seq then None
      else begin
        let ch1, len1 = read_run t seq run in
        if ch1 <> c1 || len1 < l1 then None
        else begin
          let last = List.nth rest (List.length rest - 1) in
          let chk, lenk = read_run t seq (run + k - 1) in
          if chk = last.Rle.ch && lenk >= last.Rle.len then
            Some { seq; pos = t.meta.(seq).run_offsets.(run) + (len1 - l1) }
          else None
        end
      end

let dedup_occurrences occs =
  List.sort_uniq (fun a b -> compare (a.seq, a.pos) (b.seq, b.pos)) occs

let substring_search t pattern =
  if pattern = "" then []
  else begin
    let pruns = Rle.runs (Rle.encode pattern) in
    let q = query_bytes pruns in
    let probe key = compare_norm_pattern t key q in
    Btree.range_probe t.tree ~probe
    |> List.filter_map (fun (key, _) ->
           let seq, run = decode_ref key in
           verify t pruns seq run)
    |> dedup_occurrences
  end

let substring_search_3sided t pattern =
  match t.three with
  | None -> invalid_arg "Sbc_tree: created without the 3-sided structure"
  | Some rt ->
      if pattern = "" then []
      else begin
        let pruns = Rle.runs (Rle.encode pattern) in
        let l1 = match pruns with { Rle.len; _ } :: _ -> len | [] -> 0 in
        let q = query_bytes pruns in
        let x_lo = embed6 q and x_hi = embed6_hi q in
        Rtree.three_sided rt ~x_lo ~x_hi ~y_lo:(float_of_int l1)
        |> List.filter_map (fun (_, eid) ->
               let seq, run = t.entries.(eid) in
               (* the embedding truncates at 6 bytes: re-check the full key *)
               if compare_norm_pattern t (encode_ref seq run) q = 0 then
                 verify t pruns seq run
               else None)
        |> dedup_occurrences
      end

let prefix_search t pattern =
  if pattern = "" then []
  else begin
    let pruns = Rle.runs (Rle.encode pattern) in
    let k = List.length pruns in
    let l1 = match pruns with { Rle.len; _ } :: _ -> len | [] -> 0 in
    substring_search t pattern
    |> List.filter_map (fun { seq; pos } ->
           (* prefix of the raw text: the match must start at raw position 0,
              which for k >= 2 additionally forces the first text run to be
              exactly l1 long *)
           if pos <> 0 then None
           else if k = 1 then Some seq
           else
             let _, len1 = read_run t seq 0 in
             if len1 = l1 then Some seq else None)
    |> List.sort_uniq compare
  end

(* Greedy subsequence check over a sequence's run records. *)
let seq_has_subsequence t seq pattern =
  let m = String.length pattern in
  let nruns = run_count t seq in
  let pi = ref 0 in
  let run = ref 0 in
  while !pi < m && !run < nruns do
    let ch, len = read_run t seq !run in
    if pattern.[!pi] = ch then begin
      let supplied = ref 0 in
      while !pi < m && pattern.[!pi] = ch && !supplied < len do
        incr pi;
        incr supplied
      done
    end;
    incr run
  done;
  !pi >= m

let subsequence_search t pattern =
  if pattern = "" then List.init t.nseq Fun.id
  else begin
    let out = ref [] in
    for seq = 0 to t.nseq - 1 do
      if seq_has_subsequence t seq pattern then out := seq :: !out
    done;
    List.rev !out
  end

(* Compare a stored sequence's raw text against a raw string without
   decompressing: walk runs. *)
let compare_seq_raw t seq s =
  let nruns = run_count t seq in
  let n = String.length s in
  let rec go run si =
    if run >= nruns && si >= n then 0
    else if run >= nruns then -1
    else if si >= n then 1
    else begin
      let ch, len = read_run t seq run in
      let rec eat j = if j < si + len && j < n && s.[j] = ch then eat (j + 1) else j in
      let j = eat si in
      if j = si then Char.compare ch s.[si]
      else if j - si = len then go (run + 1) j
      else if j >= n then 1 (* s exhausted inside this run *)
      else Char.compare ch s.[j]
    end
  in
  go 0 0

let range_search t ~lo ~hi =
  let out = ref [] in
  for seq = 0 to t.nseq - 1 do
    if compare_seq_raw t seq lo >= 0 && compare_seq_raw t seq hi <= 0 then
      out := seq :: !out
  done;
  List.rev !out

let decode t seq =
  let buf = Buffer.create t.meta.(seq).raw_len in
  for run = 0 to run_count t seq - 1 do
    let ch, len = read_run t seq run in
    Buffer.add_string buf (String.make len ch)
  done;
  Buffer.contents buf

let raw_length t seq = t.meta.(seq).raw_len

let entry_count t = Btree.entry_count t.tree
let index_pages t = Btree.node_pages t.tree
let text_pages t = Text_store.page_count t.text
let rtree_pages t = match t.three with None -> 0 | Some rt -> Rtree.node_pages rt
let total_pages t = index_pages t + text_pages t + rtree_pages t

module Btree = Bdbms_index.Btree

type occurrence = { seq : Text_store.seq_id; pos : int }

type t = { text : Text_store.t; tree : Btree.t }

(* Suffix keys are fixed-width (seq, offset) references; all ordering goes
   through the text store — nodes never copy suffix bytes, exactly as in
   the String B-tree. *)
let encode_ref seq pos =
  let b n = String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff)) in
  b seq ^ b pos

let decode_ref s =
  let b off =
    Char.code s.[off] lsl 24
    lor (Char.code s.[off + 1] lsl 16)
    lor (Char.code s.[off + 2] lsl 8)
    lor Char.code s.[off + 3]
  in
  (b 0, b 4)

let block = 64
(* characters fetched per comparison step *)

(* Lexicographic order of suffix texts, reading both through the text store
   in blocks; ties (identical text) break by reference for a total order. *)
let compare_suffixes text a b =
  let seq_a, pos_a = decode_ref a and seq_b, pos_b = decode_ref b in
  let len_a = Text_store.length text seq_a - pos_a in
  let len_b = Text_store.length text seq_b - pos_b in
  let rec go off =
    if off >= len_a && off >= len_b then compare (seq_a, pos_a) (seq_b, pos_b)
    else if off >= len_a then -1
    else if off >= len_b then 1
    else begin
      let na = min block (len_a - off) and nb = min block (len_b - off) in
      let n = min na nb in
      let sa = Text_store.read text seq_a ~pos:(pos_a + off) ~len:n in
      let sb = Text_store.read text seq_b ~pos:(pos_b + off) ~len:n in
      let c = String.compare sa sb in
      if c <> 0 then c else go (off + n)
    end
  in
  go 0

(* Three-way comparison of the suffix at [key] against a pattern:
   0 when the suffix starts with the pattern. *)
let compare_suffix_pattern text key pattern =
  let seq, pos = decode_ref key in
  let len = Text_store.length text seq - pos in
  let m = String.length pattern in
  let rec go off =
    if off >= m then 0 (* pattern exhausted: suffix has pattern as prefix *)
    else if off >= len then -1 (* suffix is a proper prefix of the pattern *)
    else begin
      let n = min block (min (m - off) (len - off)) in
      let s = Text_store.read text seq ~pos:(pos + off) ~len:n in
      let p = String.sub pattern off n in
      let c = String.compare s p in
      if c <> 0 then c else go (off + n)
    end
  in
  go 0

let create bp =
  let text = Text_store.create bp in
  { text; tree = Btree.create ~cmp:(compare_suffixes text) bp }

let insert t s =
  let seq = Text_store.add t.text s in
  for pos = 0 to String.length s - 1 do
    Btree.insert t.tree ~key:(encode_ref seq pos) ~value:0
  done;
  seq

let substring_search t pattern =
  if pattern = "" then []
  else
    let probe key = compare_suffix_pattern t.text key pattern in
    Btree.range_probe t.tree ~probe
    |> List.map (fun (key, _) ->
           let seq, pos = decode_ref key in
           { seq; pos })

let prefix_search t pattern =
  substring_search t pattern
  |> List.filter_map (fun o -> if o.pos = 0 then Some o.seq else None)
  |> List.sort_uniq compare

let range_search t ~lo ~hi =
  (* Whole-sequence range: probe the suffix order for offset-0 entries whose
     text lies in [lo, hi].  A suffix >= lo and <= hi-with-prefix semantics
     is located by two pattern probes. *)
  let probe key =
    if compare_suffix_pattern t.text key lo < 0 then -1
    else
      (* above hi only when the suffix is greater and does not extend hi *)
      let c = compare_suffix_pattern t.text key hi in
      if c > 0 then 1 else 0
  in
  Btree.range_probe t.tree ~probe
  |> List.filter_map (fun (key, _) ->
         let seq, pos = decode_ref key in
         if pos <> 0 then None
         else
           let s = Text_store.read_all t.text seq in
           if String.compare s lo >= 0 && String.compare s hi <= 0 then Some seq
           else None)
  |> List.sort_uniq compare

let sequence t seq = Text_store.read_all t.text seq

let entry_count t = Btree.entry_count t.tree
let index_pages t = Btree.node_pages t.tree
let text_pages t = Text_store.page_count t.text
let total_pages t = index_pages t + text_pages t

type t = { mutable rules : Rule.t list }

let create () = { rules = [] }

let rules t = t.rules

let find t id = List.find_opt (fun r -> r.Rule.id = id) t.rules

let rules_from_source t attr =
  List.filter (fun r -> List.exists (Rule.attr_equal attr) r.Rule.sources) t.rules

let rule_for_target t attr =
  List.find_opt (fun r -> Rule.attr_equal r.Rule.target attr) t.rules

(* attributes reachable (strictly downstream) from [attrs] *)
let reachable t attrs =
  let visited = ref [] in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | attr :: rest ->
        let next =
          rules_from_source t attr
          |> List.map (fun r -> r.Rule.target)
          |> List.filter (fun a -> not (List.exists (Rule.attr_equal a) !visited))
        in
        visited := !visited @ next;
        go (rest @ next)
  in
  go attrs;
  !visited

let would_cycle t rule =
  (* adding [rule] cycles iff its target already reaches one of its sources,
     or target equals a source *)
  List.exists (Rule.attr_equal rule.Rule.target) rule.Rule.sources
  ||
  let downstream = reachable { rules = rule :: t.rules } [ rule.Rule.target ] in
  List.exists (fun s -> List.exists (Rule.attr_equal s) downstream) rule.Rule.sources

let add t rule =
  match find t rule.Rule.id with
  | Some _ -> Error (Printf.sprintf "rule id %s already exists" rule.Rule.id)
  | None -> (
      match rule_for_target t rule.Rule.target with
      | Some existing ->
          Error
            (Format.asprintf "conflict: %a is already derived by rule %s"
               Rule.pp_attr rule.Rule.target existing.Rule.id)
      | None ->
          if would_cycle t rule then
            Error (Printf.sprintf "rule %s would create a dependency cycle" rule.Rule.id)
          else begin
            t.rules <- t.rules @ [ rule ];
            Ok ()
          end)

let attribute_closure t attrs = reachable t attrs

let procedure_closure t proc_name =
  (* direct targets of rules using the procedure, plus everything downstream *)
  let direct =
    List.filter (fun r -> Rule.uses_procedure r proc_name) t.rules
    |> List.map (fun r -> r.Rule.target)
  in
  let rec dedup acc = function
    | [] -> List.rev acc
    | a :: rest ->
        if List.exists (Rule.attr_equal a) acc then dedup acc rest
        else dedup (a :: acc) rest
  in
  dedup [] (direct @ reachable t direct)

let derived_rules t =
  (* fixpoint of pairwise composition *)
  let counter = ref 0 in
  let fresh () =
    incr counter;
    "d" ^ string_of_int !counter
  in
  let known = ref t.rules in
  let results = ref [] in
  let exists_equiv rule =
    List.exists
      (fun r ->
        Rule.attr_equal r.Rule.target rule.Rule.target
        && List.length r.Rule.sources = List.length rule.Rule.sources
        && List.for_all2 Rule.attr_equal r.Rule.sources rule.Rule.sources
        && List.length r.Rule.chain = List.length rule.Rule.chain)
      !known
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r1 ->
        List.iter
          (fun r2 ->
            match Rule.compose ~id:(fresh ()) r1 r2 with
            | Some d when not (exists_equiv d) ->
                known := !known @ [ d ];
                results := !results @ [ d ];
                changed := true
            | Some _ -> decr counter
            | None -> ())
          !known)
      !known
  done;
  !results

(** Outdated-data bitmaps (Section 5, Figure 10).

    Each tracked table carries a bitmap with one bit per cell: 1 means the
    cell's value may be invalid and needs re-verification.  The bitmap
    grows with the table, and its RLE-compressed size is reported next to
    the raw size (the paper proposes Run-Length-Encoding to reduce the
    bitmaps' storage overhead). *)

type t

val create : Bdbms_relation.Table.t -> t
(** A fresh all-valid bitmap sized to the table's current shape. *)

val table_name : t -> string

val mark : t -> row:int -> col:int -> unit
(** Flag a cell outdated (grows the bitmap if the table grew). *)

val clear : t -> row:int -> col:int -> unit
(** Re-validate a cell — Section 5 notes an outdated value may be
    re-validated without being modified. *)

val is_outdated : t -> row:int -> col:int -> bool
val outdated_cells : t -> (int * int) list
val outdated_count : t -> int

val raw_size_bytes : t -> int
val compressed_size_bytes : t -> int
(** RLE-compressed footprint (what the tracker would persist). *)

val pp : Format.formatter -> t -> unit

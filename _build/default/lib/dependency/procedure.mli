(** Procedures: the derivation mechanisms of Procedural Dependencies
    (Section 5).

    A procedure is characterized by whether the database can execute it
    (a prediction tool or BLAST is executable; a lab experiment is not)
    and whether it is invertible.  Executable procedures carry an OCaml
    body so the dependency tracker can re-derive values automatically;
    non-executable ones can only cause targets to be marked outdated. *)

type body = Bdbms_relation.Value.t list -> (Bdbms_relation.Value.t, string) result
(** Computes the target value from the source values, in rule order. *)

type t = {
  name : string;
  mutable version : string;
  kind : kind;
  invertible : bool;
}

and kind =
  | Executable of body
  | Non_executable of string  (** description, e.g. "lab experiment" *)

val executable : name:string -> ?version:string -> ?invertible:bool -> body -> t
val non_executable : name:string -> ?description:string -> ?invertible:bool -> unit -> t

val is_executable : t -> bool

val run : t -> Bdbms_relation.Value.t list -> (Bdbms_relation.Value.t, string) result
(** @raise Invalid_argument on a non-executable procedure. *)

val set_version : t -> string -> unit
(** Bump the version — e.g. BLAST-2.2.15 upgraded — which makes every
    value derived through it stale (Section 5, Figure 9b). *)

val describe : t -> string
(** e.g. ["BLAST-2.2.15 (executable, non-invertible)"]. *)

val pp : Format.formatter -> t -> unit

(** Named registry, so rules can reference procedures by name. *)
module Registry : sig
  type proc = t
  type t

  val create : unit -> t
  val register : t -> proc -> (unit, string) result
  val find : t -> string -> proc option
  val names : t -> string list
end

(** The rule base: registration, reasoning, and closure computation
    (Section 5's "Modeling dependencies").

    Supports the paper's reasoning tasks: detecting cycles and conflicts
    among dependency rules, computing the closure of an attribute set
    (everything transitively derivable from it), computing the {e closure
    of a procedure} (all data that depends on a specific procedure), and
    deriving composite rules by chaining (Rule 1 + Rule 2 ⇒ Rule 4). *)

type t

val create : unit -> t

val add : t -> Rule.t -> (unit, string) result
(** Fails when the rule would create a {e conflict} (a second rule deriving
    the same target column) or a {e cycle} (the target already reaches a
    source transitively). *)

val rules : t -> Rule.t list

val find : t -> string -> Rule.t option

val rules_from_source : t -> Rule.attr -> Rule.t list
(** Rules having the attribute among their sources. *)

val rule_for_target : t -> Rule.attr -> Rule.t option

val attribute_closure : t -> Rule.attr list -> Rule.attr list
(** All attributes transitively derivable from the given set (the set
    itself excluded), in dependency order. *)

val procedure_closure : t -> string -> Rule.attr list
(** All attributes that depend (transitively) on the named procedure. *)

val derived_rules : t -> Rule.t list
(** Every composite rule obtainable by chaining base rules, e.g. the
    paper's Rule 4.  Ids are ["d1"], ["d2"], ... *)

val would_cycle : t -> Rule.t -> bool

lib/dependency/rule.ml: Format List Procedure String

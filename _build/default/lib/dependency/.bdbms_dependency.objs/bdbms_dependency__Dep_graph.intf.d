lib/dependency/dep_graph.mli: Format

lib/dependency/rule_set.ml: Format List Printf Rule

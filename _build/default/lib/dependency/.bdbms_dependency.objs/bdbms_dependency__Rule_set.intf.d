lib/dependency/rule_set.mli: Rule

lib/dependency/dep_graph.ml: Format Hashtbl List String

lib/dependency/rule.mli: Format Procedure

lib/dependency/procedure.ml: Bdbms_relation Format Hashtbl List Printf String

lib/dependency/tracker.mli: Bdbms_relation Dep_graph Outdated Procedure Rule Rule_set

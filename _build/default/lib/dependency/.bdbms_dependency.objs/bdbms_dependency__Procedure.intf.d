lib/dependency/procedure.mli: Bdbms_relation Format

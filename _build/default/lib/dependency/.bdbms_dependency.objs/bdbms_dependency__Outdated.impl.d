lib/dependency/outdated.ml: Bdbms_relation Bdbms_util List

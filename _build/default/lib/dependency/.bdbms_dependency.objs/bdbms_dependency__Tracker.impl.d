lib/dependency/tracker.ml: Bdbms_relation Dep_graph Format Hashtbl List Outdated Printf Procedure Result Rule Rule_set String

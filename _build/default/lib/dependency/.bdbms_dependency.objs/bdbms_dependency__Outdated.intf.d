lib/dependency/outdated.mli: Bdbms_relation Format

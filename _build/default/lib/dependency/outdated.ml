module Bitmap = Bdbms_util.Bitmap
module Table = Bdbms_relation.Table
module Schema = Bdbms_relation.Schema

type t = {
  table : Table.t;
  mutable bitmap : Bitmap.t;
}

let create table =
  let rows = max 1 (Table.row_count table) in
  let cols = Schema.arity (Table.schema table) in
  { table; bitmap = Bitmap.create ~rows ~cols }

let table_name t = Table.name t.table

let ensure_capacity t row =
  let have = Bitmap.rows t.bitmap in
  if row >= have then
    t.bitmap <- Bitmap.append_rows t.bitmap (max (row + 1 - have) have)

let mark t ~row ~col =
  ensure_capacity t row;
  Bitmap.set t.bitmap ~row ~col true

let clear t ~row ~col =
  if row < Bitmap.rows t.bitmap then Bitmap.set t.bitmap ~row ~col false

let is_outdated t ~row ~col =
  row < Bitmap.rows t.bitmap && Bitmap.get t.bitmap ~row ~col

let outdated_cells t =
  let out = ref [] in
  Bitmap.iter_set t.bitmap (fun row col -> out := (row, col) :: !out);
  List.rev !out

let outdated_count t = Bitmap.count_set t.bitmap

let raw_size_bytes t = Bitmap.raw_size_bytes t.bitmap
let compressed_size_bytes t = Bitmap.compressed_size_bytes t.bitmap

let pp fmt t = Bitmap.pp fmt t.bitmap

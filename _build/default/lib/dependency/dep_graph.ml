type cell = { table : string; row : int; col : int }

let cell ~table ~row ~col = { table = String.lowercase_ascii table; row; col }

let cell_equal a b = a.table = b.table && a.row = b.row && a.col = b.col

let pp_cell fmt c = Format.fprintf fmt "%s[%d,%d]" c.table c.row c.col

type instance = { rule_id : string; sources : cell list; target : cell }

type t = {
  (* source cell -> instances it feeds *)
  by_source : (cell, instance list) Hashtbl.t;
  by_target : (cell, instance) Hashtbl.t;
  mutable count : int;
}

let create () = { by_source = Hashtbl.create 64; by_target = Hashtbl.create 64; count = 0 }

let add_instance t inst =
  List.iter
    (fun src ->
      let cur = try Hashtbl.find t.by_source src with Not_found -> [] in
      Hashtbl.replace t.by_source src (inst :: cur))
    inst.sources;
  Hashtbl.replace t.by_target inst.target inst;
  t.count <- t.count + 1

let instances_from t src =
  try List.rev (Hashtbl.find t.by_source src) with Not_found -> []

let instance_for_target t target = Hashtbl.find_opt t.by_target target

let dependents t src = List.map (fun i -> i.target) (instances_from t src)

let transitive_dependents t src =
  let visited = Hashtbl.create 16 in
  let out = ref [] in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | c :: rest ->
        let next =
          dependents t c
          |> List.filter (fun d ->
                 if Hashtbl.mem visited d then false
                 else begin
                   Hashtbl.add visited d ();
                   true
                 end)
        in
        out := !out @ next;
        go (rest @ next)
  in
  Hashtbl.add visited src ();
  go [ src ];
  !out

let iter_instances t f = Hashtbl.iter (fun _ inst -> f inst) t.by_target

let instance_count t = t.count

(** Instance-level dependency graph (Section 5's "Storing dependencies").

    Schema-level rules say {e which columns} derive from which; the
    instance graph says {e which cells}: e.g. protein row 7's PSequence is
    derived from gene row 3's GSequence under Rule 1.  Instances are
    registered when derived rows are linked (typically along a foreign
    key) and drive the tracker's cascades. *)

type cell = { table : string; row : int; col : int }

val cell : table:string -> row:int -> col:int -> cell
val cell_equal : cell -> cell -> bool
val pp_cell : Format.formatter -> cell -> unit

type instance = {
  rule_id : string;
  sources : cell list;  (** in the rule's source order *)
  target : cell;
}

type t

val create : unit -> t

val add_instance : t -> instance -> unit

val instances_from : t -> cell -> instance list
(** Instances having the cell among their sources. *)

val instance_for_target : t -> cell -> instance option

val dependents : t -> cell -> cell list
(** Direct dependent cells. *)

val transitive_dependents : t -> cell -> cell list
(** Everything downstream (cycle-safe), in BFS order. *)

val iter_instances : t -> (instance -> unit) -> unit
(** Every registered instance, once each. *)

val instance_count : t -> int

type body = Bdbms_relation.Value.t list -> (Bdbms_relation.Value.t, string) result

type t = {
  name : string;
  mutable version : string;
  kind : kind;
  invertible : bool;
}

and kind =
  | Executable of body
  | Non_executable of string

let executable ~name ?(version = "1") ?(invertible = false) body =
  { name; version; kind = Executable body; invertible }

let non_executable ~name ?(description = "external procedure") ?(invertible = false) () =
  { name; version = "1"; kind = Non_executable description; invertible }

let is_executable t = match t.kind with Executable _ -> true | Non_executable _ -> false

let run t inputs =
  match t.kind with
  | Executable body -> body inputs
  | Non_executable desc ->
      invalid_arg
        (Printf.sprintf "procedure %s is not executable by the database (%s)" t.name desc)

let set_version t v = t.version <- v

let describe t =
  Printf.sprintf "%s-%s (%s, %s)" t.name t.version
    (if is_executable t then "executable" else "non-executable")
    (if t.invertible then "invertible" else "non-invertible")

let pp fmt t = Format.pp_print_string fmt (describe t)

module Registry = struct
  type proc = t

  type t = (string, proc) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let register t proc =
    if Hashtbl.mem t proc.name then
      Error (Printf.sprintf "procedure %s is already registered" proc.name)
    else begin
      Hashtbl.replace t proc.name proc;
      Ok ()
    end

  let find t name = Hashtbl.find_opt t name

  let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare
end

lib/core/db.ml: Bdbms_asql Bdbms_bio Bdbms_storage List Printf

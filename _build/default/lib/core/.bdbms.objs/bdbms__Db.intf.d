lib/core/db.mli: Bdbms_asql Bdbms_storage

type query =
  | Exact of string
  | Prefix of string
  | Regex of Regex_lite.t

(* A path-compressed trie (the "path shrinking" of the SP-GiST trie
   variants): edge labels are character chunks, not single characters, so
   a long shared prefix costs one node instead of one per character.
   Children of a node may have overlapping first characters transiently
   (a new short chunk next to an older longer one); [consistent] checks
   every compatible child, which keeps searches correct. *)
module Strategy = struct
  type key = string

  type nonrec query = query

  type label = Next of string | End

  let encode_key k = k
  let decode_key k = k

  let encode_label = function Next c -> c | End -> ""
  let decode_label s = if s = "" then End else Next s

  let label_equal a b = a = b

  let max_chunk = 16

  let depth_of path =
    List.fold_left
      (fun acc l -> match l with Next c -> acc + String.length c | End -> acc)
      0 path

  let rem_of key depth = String.sub key depth (String.length key - depth)

  let starts_with ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix

  let choose ~path ~existing key =
    let depth = depth_of path in
    if depth >= String.length key then End
    else begin
      let rem = rem_of key depth in
      (* the longest existing chunk that prefixes the remainder *)
      let best =
        List.fold_left
          (fun acc l ->
            match l with
            | End -> acc
            | Next c ->
                if starts_with ~prefix:c rem then
                  match acc with
                  | Some (Next c') when String.length c' >= String.length c -> acc
                  | _ -> Some (Next c)
                else acc)
          None existing
      in
      match best with Some l -> l | None -> Next (String.make 1 rem.[0])
    end

  let common_prefix_len a b =
    let n = min (String.length a) (String.length b) in
    let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
    go 0

  (* Partition keys at [depth] into labelled groups with path compression.
     When every key shares the same first character, the shared chunk is
     consumed and partitioning recurses one level deeper so that a split
     always makes progress (labels are the chunk plus each sub-partition's
     label); keys ending exactly at the chunk boundary become the chunk's
     own group and terminate beneath it. *)
  let rec partition depth keys =
    let buckets = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun key ->
        let tag = if depth >= String.length key then None else Some key.[depth] in
        match Hashtbl.find_opt buckets tag with
        | Some ks -> Hashtbl.replace buckets tag (key :: ks)
        | None ->
            Hashtbl.add buckets tag [ key ];
            order := tag :: !order)
      keys;
    let groups =
      List.rev_map
        (fun tag -> (tag, List.rev (Hashtbl.find buckets tag)))
        !order
    in
    match groups with
    | [ (Some _, ks) ] -> begin
        (* all keys continue with the same character: consume the longest
           common prefix chunk, then recurse past it *)
        let chunk =
          match ks with
          | [] -> assert false
          | first :: rest ->
              let rem0 = rem_of first depth in
              let len =
                List.fold_left
                  (fun acc k -> min acc (common_prefix_len rem0 (rem_of k depth)))
                  (String.length rem0) rest
              in
              String.sub rem0 0 (max 1 (min len max_chunk))
        in
        let below = depth + String.length chunk in
        let all_exhausted = List.for_all (fun k -> String.length k = below) ks in
        if all_exhausted || String.length chunk >= max_chunk then
          [ (Next chunk, ks) ] (* identical keys (or chunk cap): no progress *)
        else
          partition below ks
          |> List.map (fun (label, group) ->
                 match label with
                 | End -> (Next chunk, group)
                 | Next c when String.length chunk + String.length c <= max_chunk ->
                     (Next (chunk ^ c), group)
                 | Next _ -> (Next chunk, group))
      end
    | _ ->
        List.map
          (fun (tag, ks) ->
            match tag with
            | None -> (End, ks)
            | Some _ ->
                let chunk =
                  match ks with
                  | [] -> assert false
                  | first :: rest ->
                      let rem0 = rem_of first depth in
                      let len =
                        List.fold_left
                          (fun acc k ->
                            min acc (common_prefix_len rem0 (rem_of k depth)))
                          (String.length rem0) rest
                      in
                      String.sub rem0 0 (max 1 (min len max_chunk))
                in
                (Next chunk, ks))
          groups

  let picksplit ~path keys =
    (* merge duplicate labels produced by the recursive case (e.g. several
       sub-groups capped back to the same chunk) *)
    let groups = partition (depth_of path) keys in
    let merged = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (label, ks) ->
        let k = encode_label label in
        match Hashtbl.find_opt merged k with
        | Some (l, acc) -> Hashtbl.replace merged k (l, acc @ ks)
        | None ->
            Hashtbl.add merged k (label, ks);
            order := k :: !order)
      groups;
    List.rev_map (fun k -> Hashtbl.find merged k) !order

  let path_string path =
    String.concat ""
      (List.map (function Next c -> c | End -> "") path)

  let consistent ~path label query =
    let base = path_string path in
    match (query, label) with
    | Exact s, End -> s = base
    | Exact s, Next c -> starts_with ~prefix:(base ^ c) s
    | Prefix p, End -> starts_with ~prefix:p base
    | Prefix p, Next c ->
        let full = base ^ c in
        starts_with ~prefix:p full || starts_with ~prefix:full p
    | Regex r, End -> Regex_lite.matches r base
    | Regex r, Next c ->
        (* every character added along the chunk must stay feasible *)
        let rec go i =
          if i > String.length c then true
          else if Regex_lite.feasible_prefix r (base ^ String.sub c 0 i) then go (i + 1)
          else false
        in
        go 1

  let matches query key =
    match query with
    | Exact s -> String.equal key s
    | Prefix p -> starts_with ~prefix:p key
    | Regex r -> Regex_lite.matches r key

  let max_leaf_entries = 48

  let subtree_lower_bound = None
  let key_distance = None
end

module Tree = Spgist.Make (Strategy)

type t = Tree.t

let create = Tree.create
let insert t key value = Tree.insert t key value
let search = Tree.search

let exact t s = List.map snd (search t (Exact s))
let prefix t p = search t (Prefix p)

let regex t pattern =
  match Regex_lite.compile pattern with
  | Ok r -> Ok (search t (Regex r))
  | Error e -> Error e

let entry_count = Tree.entry_count
let node_pages = Tree.node_pages
let max_depth = Tree.max_depth

type point = { x : float; y : float }

type query =
  | Point of point
  | Window of { x_lo : float; x_hi : float; y_lo : float; y_hi : float }
  | Near of point

(* The strategy is generated per-tree because the world rectangle is a
   runtime parameter; a first-class module keeps the SP-GiST plumbing
   shared. *)
module type WORLD = sig
  val x_lo : float
  val y_lo : float
  val x_hi : float
  val y_hi : float
end

module Make_strategy (W : WORLD) = struct
  type key = point

  type nonrec query = query

  (* quadrants: 0 = SW, 1 = SE, 2 = NW, 3 = NE *)
  type label = int

  let encode_key p =
    let f64 f =
      let bits = Int64.bits_of_float f in
      String.init 8 (fun i ->
          Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xffL)))
    in
    f64 p.x ^ f64 p.y

  let decode_key s =
    let f64 off =
      let bits = ref 0L in
      for i = 7 downto 0 do
        bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code s.[off + i]))
      done;
      Int64.float_of_bits !bits
    in
    { x = f64 0; y = f64 8 }

  let encode_label q = String.make 1 (Char.chr q)
  let decode_label s = Char.code s.[0]
  let label_equal = Int.equal

  type cell = { cx_lo : float; cy_lo : float; cx_hi : float; cy_hi : float }

  let world = { cx_lo = W.x_lo; cy_lo = W.y_lo; cx_hi = W.x_hi; cy_hi = W.y_hi }

  let quarter c q =
    let mx = (c.cx_lo +. c.cx_hi) /. 2.0 and my = (c.cy_lo +. c.cy_hi) /. 2.0 in
    match q with
    | 0 -> { c with cx_hi = mx; cy_hi = my }
    | 1 -> { c with cx_lo = mx; cy_hi = my }
    | 2 -> { c with cx_hi = mx; cy_lo = my }
    | 3 -> { c with cx_lo = mx; cy_lo = my }
    | _ -> invalid_arg "Quadtree: bad quadrant"

  let cell_of_path path = List.fold_left quarter world path

  let quadrant_of c p =
    let mx = (c.cx_lo +. c.cx_hi) /. 2.0 and my = (c.cy_lo +. c.cy_hi) /. 2.0 in
    match (p.x >= mx, p.y >= my) with
    | false, false -> 0
    | true, false -> 1
    | false, true -> 2
    | true, true -> 3

  let max_split_depth = 40

  let choose ~path ~existing:_ key = quadrant_of (cell_of_path path) key

  let picksplit ~path keys =
    if List.length path >= max_split_depth then [ (0, keys) ]
    else begin
      let cell = cell_of_path path in
      let buckets = Array.make 4 [] in
      List.iter (fun k -> let q = quadrant_of cell k in buckets.(q) <- k :: buckets.(q)) keys;
      let groups = ref [] in
      for q = 3 downto 0 do
        if buckets.(q) <> [] then groups := (q, List.rev buckets.(q)) :: !groups
      done;
      !groups
    end

  (* half-open cells: [lo, hi) except at the world's top edges *)
  let cell_contains c p =
    p.x >= c.cx_lo && p.y >= c.cy_lo
    && (p.x < c.cx_hi || (c.cx_hi = world.cx_hi && p.x <= c.cx_hi))
    && (p.y < c.cy_hi || (c.cy_hi = world.cy_hi && p.y <= c.cy_hi))

  let cell_intersects c ~x_lo ~x_hi ~y_lo ~y_hi =
    x_lo < c.cx_hi && x_hi >= c.cx_lo && y_lo < c.cy_hi && y_hi >= c.cy_lo

  let consistent ~path label query =
    let cell = cell_of_path (path @ [ label ]) in
    match query with
    | Point p -> cell_contains cell p
    | Window { x_lo; x_hi; y_lo; y_hi } -> cell_intersects cell ~x_lo ~x_hi ~y_lo ~y_hi
    | Near _ -> true

  let matches query key =
    match query with
    | Point p -> p.x = key.x && p.y = key.y
    | Window { x_lo; x_hi; y_lo; y_hi } ->
        key.x >= x_lo && key.x <= x_hi && key.y >= y_lo && key.y <= y_hi
    | Near _ -> true

  let max_leaf_entries = 16

  let dist p c =
    let dx =
      if p.x < c.cx_lo then c.cx_lo -. p.x else if p.x > c.cx_hi then p.x -. c.cx_hi else 0.0
    in
    let dy =
      if p.y < c.cy_lo then c.cy_lo -. p.y else if p.y > c.cy_hi then p.y -. c.cy_hi else 0.0
    in
    sqrt ((dx *. dx) +. (dy *. dy))

  let subtree_lower_bound =
    Some
      (fun ~path label query ->
        match query with
        | Near p | Point p -> dist p (cell_of_path (path @ [ label ]))
        | Window _ -> 0.0)

  let key_distance =
    Some
      (fun query key ->
        match query with
        | Near p | Point p ->
            let dx = p.x -. key.x and dy = p.y -. key.y in
            sqrt ((dx *. dx) +. (dy *. dy))
        | Window _ -> 0.0)
end

module type TREE = sig
  val insert : point -> int -> unit
  val search : query -> (point * int) list
  val nearest : query -> k:int -> (point * int * float) list
  val entry_count : unit -> int
  val node_pages : unit -> int
  val max_depth : unit -> int
end

type t = (module TREE)

let create ?(world = (0.0, 0.0, 1.0, 1.0)) bp : t =
  let x_lo, y_lo, x_hi, y_hi = world in
  if x_lo >= x_hi || y_lo >= y_hi then invalid_arg "Quadtree.create: empty world";
  let module W = struct
    let x_lo = x_lo
    let y_lo = y_lo
    let x_hi = x_hi
    let y_hi = y_hi
  end in
  let module S = Make_strategy (W) in
  let module T = Spgist.Make (S) in
  let tree = T.create bp in
  (module struct
    let insert p v =
      if not (S.cell_contains S.world p) then
        invalid_arg "Quadtree.insert: point outside the world rectangle";
      T.insert tree p v

    let search q = T.search tree q
    let nearest q ~k = T.nearest tree q ~k
    let entry_count () = T.entry_count tree
    let node_pages () = T.node_pages tree
    let max_depth () = T.max_depth tree
  end)

let insert (module T : TREE) p v = T.insert p v
let search (module T : TREE) q = T.search q
let point_query t p = search t (Point p)

let window t ~x_lo ~x_hi ~y_lo ~y_hi = search t (Window { x_lo; x_hi; y_lo; y_hi })

let nearest (module T : TREE) p ~k = T.nearest (Near p) ~k
let entry_count (module T : TREE) = T.entry_count ()
let node_pages (module T : TREE) = T.node_pages ()
let max_depth (module T : TREE) = T.max_depth ()

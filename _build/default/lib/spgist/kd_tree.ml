type point = float array

type query =
  | Point of point
  | Window of (float * float) array
  | Near of point

(* The split geometry lives in the labels: a label records the dimension,
   the split value, and which side of it the child covers, so the region
   of any node is derivable from its root path alone. *)
module Strategy = struct
  type key = point

  type nonrec query = query

  type side = Low | High

  type label = { dim : int; split : float; side : side }

  let encode_key p =
    let buf = Buffer.create (8 * Array.length p) in
    Array.iter
      (fun f ->
        let bits = Int64.bits_of_float f in
        for i = 0 to 7 do
          Buffer.add_char buf
            (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xffL)))
        done)
      p;
    Buffer.contents buf

  let decode_key s =
    let n = String.length s / 8 in
    Array.init n (fun j ->
        let bits = ref 0L in
        for i = 7 downto 0 do
          bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code s.[(j * 8) + i]))
        done;
        Int64.float_of_bits !bits)

  let encode_label l =
    let side = match l.side with Low -> '\000' | High -> '\001' in
    Printf.sprintf "%c%c%s" (Char.chr l.dim) side (encode_key [| l.split |])

  let decode_label s =
    {
      dim = Char.code s.[0];
      side = (if s.[1] = '\000' then Low else High);
      split = (decode_key (String.sub s 2 8)).(0);
    }

  let label_equal a b = a.dim = b.dim && a.split = b.split && a.side = b.side

  let choose ~path:_ ~existing key =
    match existing with
    | [] -> assert false (* internal nodes are created by picksplit with children *)
    | l :: _ ->
        let side = if key.(l.dim) < l.split then Low else High in
        { dim = l.dim; split = l.split; side }

  let median values =
    let arr = Array.copy values in
    Array.sort Float.compare arr;
    arr.(Array.length arr / 2)

  let picksplit ~path keys =
    match keys with
    | [] -> []
    | first :: _ ->
        let dims = Array.length first in
        let depth = List.length path in
        (* try dimensions starting at depth mod dims until one separates *)
        let rec try_dim attempt =
          if attempt >= dims then None
          else
            let dim = (depth + attempt) mod dims in
            let split = median (Array.of_list (List.map (fun k -> k.(dim)) keys)) in
            let low = List.filter (fun k -> k.(dim) < split) keys in
            let high = List.filter (fun k -> k.(dim) >= split) keys in
            if low = [] || high = [] then try_dim (attempt + 1)
            else Some (dim, split, low, high)
        in
        (match try_dim 0 with
        | None -> [ ({ dim = 0; split = 0.0; side = Low }, keys) ] (* duplicates *)
        | Some (dim, split, low, high) ->
            [ ({ dim; split; side = Low }, low); ({ dim; split; side = High }, high) ])

  (* Region of a node from its path: per-dimension open bounds. *)
  let region_of_path path =
    let dims =
      List.fold_left (fun acc l -> max acc (l.dim + 1)) 1 path
    in
    let lo = Array.make (max dims 8) neg_infinity in
    let hi = Array.make (max dims 8) infinity in
    List.iter
      (fun l ->
        match l.side with
        | Low -> hi.(l.dim) <- Float.min hi.(l.dim) l.split
        | High -> lo.(l.dim) <- Float.max lo.(l.dim) l.split)
      path;
    (lo, hi)

  (* point is inside region: lo <= p < hi on split dims (High side includes
     the split value, Low side excludes it) *)
  let region_contains (lo, hi) p =
    let ok = ref true in
    Array.iteri
      (fun d x -> if d < Array.length lo && (x < lo.(d) || x >= hi.(d)) then ok := false)
      p;
    !ok

  let region_intersects_window (lo, hi) w =
    let ok = ref true in
    Array.iteri
      (fun d (wlo, whi) ->
        if d < Array.length lo && (whi < lo.(d) || wlo >= hi.(d)) then ok := false)
      w;
    !ok

  let consistent ~path label query =
    let region = region_of_path (path @ [ label ]) in
    match query with
    | Point p -> region_contains region p
    | Window w -> region_intersects_window region w
    | Near _ -> true

  let matches query key =
    match query with
    | Point p -> p = key
    | Window w ->
        let ok = ref (Array.length w = Array.length key) in
        Array.iteri
          (fun d x ->
            if !ok then
              let wlo, whi = w.(d) in
              if x < wlo || x > whi then ok := false)
          key;
        !ok
    | Near _ -> true

  let max_leaf_entries = 16

  let dist_to_region (lo, hi) p =
    let acc = ref 0.0 in
    Array.iteri
      (fun d x ->
        if d < Array.length lo then begin
          let dx =
            if x < lo.(d) then lo.(d) -. x else if x > hi.(d) then x -. hi.(d) else 0.0
          in
          acc := !acc +. (dx *. dx)
        end)
      p;
    sqrt !acc

  let subtree_lower_bound =
    Some
      (fun ~path label query ->
        match query with
        | Near p | Point p -> dist_to_region (region_of_path (path @ [ label ])) p
        | Window _ -> 0.0)

  let key_distance =
    Some
      (fun query key ->
        match query with
        | Near p | Point p ->
            let acc = ref 0.0 in
            Array.iteri
              (fun d x ->
                let dx = x -. (if d < Array.length key then key.(d) else 0.0) in
                acc := !acc +. (dx *. dx))
              p;
            sqrt !acc
        | Window _ -> 0.0)
end

module Tree = Spgist.Make (Strategy)

type t = { tree : Tree.t; dims : int }

let create ~dims bp =
  if dims < 1 then invalid_arg "Kd_tree.create: dims must be >= 1";
  { tree = Tree.create bp; dims }

let insert t p value =
  if Array.length p <> t.dims then invalid_arg "Kd_tree.insert: dimension mismatch";
  Tree.insert t.tree p value

let search t q = Tree.search t.tree q

let point_query t p = search t (Point p)
let window t w = search t (Window w)
let nearest t p ~k = Tree.nearest t.tree (Near p) ~k

let entry_count t = Tree.entry_count t.tree
let node_pages t = Tree.node_pages t.tree
let max_depth t = Tree.max_depth t.tree

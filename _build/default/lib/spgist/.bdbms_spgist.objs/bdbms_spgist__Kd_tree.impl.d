lib/spgist/kd_tree.ml: Array Buffer Char Float Int64 List Printf Spgist String

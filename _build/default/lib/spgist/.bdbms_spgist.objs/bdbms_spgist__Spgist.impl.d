lib/spgist/spgist.ml: Bdbms_storage Char Hashtbl List Printf String

lib/spgist/trie.ml: Hashtbl List Regex_lite Spgist String

lib/spgist/regex_lite.ml: Array Char Hashtbl Int List Printf Set String

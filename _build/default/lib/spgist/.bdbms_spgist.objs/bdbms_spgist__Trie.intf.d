lib/spgist/trie.mli: Bdbms_storage Regex_lite

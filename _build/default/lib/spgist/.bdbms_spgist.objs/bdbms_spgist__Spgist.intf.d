lib/spgist/spgist.mli: Bdbms_storage

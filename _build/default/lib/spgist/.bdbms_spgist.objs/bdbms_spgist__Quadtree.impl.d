lib/spgist/quadtree.ml: Array Char Int Int64 List Spgist String

lib/spgist/kd_tree.mli: Bdbms_storage

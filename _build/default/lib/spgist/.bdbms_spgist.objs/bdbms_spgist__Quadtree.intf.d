lib/spgist/quadtree.mli: Bdbms_storage

lib/spgist/regex_lite.mli:

(* AST *)
type ast =
  | Empty
  | Char_set of (char -> bool)
  | Seq of ast * ast
  | Alt of ast * ast
  | Star of ast
  | Plus of ast
  | Opt of ast

exception Syntax of string

(* Recursive-descent parser: alt := seq ('|' seq)*; seq := rep*;
   rep := atom ('*'|'+'|'?')*; atom := char | '.' | class | '(' alt ')' *)
let parse src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let parse_class () =
    (* after '[' *)
    let negated =
      match peek () with
      | Some '^' ->
          advance ();
          true
      | _ -> false
    in
    let ranges = ref [] in
    let finished = ref false in
    while not !finished do
      match peek () with
      | None -> raise (Syntax "unterminated character class")
      | Some ']' ->
          advance ();
          finished := true
      | Some c ->
          advance ();
          if peek () = Some '-' && !pos + 1 < n && src.[!pos + 1] <> ']' then begin
            advance ();
            let hi =
              match peek () with
              | Some h ->
                  advance ();
                  h
              | None -> raise (Syntax "unterminated range")
            in
            ranges := (c, hi) :: !ranges
          end
          else ranges := (c, c) :: !ranges
    done;
    let ranges = !ranges in
    let inside ch = List.exists (fun (lo, hi) -> ch >= lo && ch <= hi) ranges in
    Char_set (fun ch -> if negated then not (inside ch) else inside ch)
  in
  let rec parse_alt () =
    let left = parse_seq () in
    match peek () with
    | Some '|' ->
        advance ();
        Alt (left, parse_alt ())
    | _ -> left
  and parse_seq () =
    let rec go acc =
      match peek () with
      | None | Some '|' | Some ')' -> acc
      | _ -> go (Seq (acc, parse_rep ()))
    in
    match peek () with
    | None | Some '|' | Some ')' -> Empty
    | _ ->
        let first = parse_rep () in
        go first
  and parse_rep () =
    let atom = parse_atom () in
    let rec quantify a =
      match peek () with
      | Some '*' ->
          advance ();
          quantify (Star a)
      | Some '+' ->
          advance ();
          quantify (Plus a)
      | Some '?' ->
          advance ();
          quantify (Opt a)
      | _ -> a
    in
    quantify atom
  and parse_atom () =
    match peek () with
    | None -> raise (Syntax "expected an atom")
    | Some '(' ->
        advance ();
        let inner = parse_alt () in
        (match peek () with
        | Some ')' -> advance ()
        | _ -> raise (Syntax "unbalanced parenthesis"));
        inner
    | Some '.' ->
        advance ();
        Char_set (fun _ -> true)
    | Some '[' ->
        advance ();
        parse_class ()
    | Some (('*' | '+' | '?' | ')' | '|') as c) ->
        raise (Syntax (Printf.sprintf "unexpected %C" c))
    | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
            advance ();
            Char_set (Char.equal c)
        | None -> raise (Syntax "dangling escape"))
    | Some c ->
        advance ();
        Char_set (Char.equal c)
  in
  let ast = parse_alt () in
  if !pos <> n then raise (Syntax "trailing characters");
  ast

(* NFA: states with epsilon closure.  State = int; transitions arrays. *)
type nfa = {
  (* char transitions: state -> (predicate, target) list *)
  trans : (char -> bool) array array; (* trans.(s).(i) tested against targets.(s).(i) *)
  targets : int array array;
  eps : int list array;
  accept : int;
  start : int;
}

type t = { nfa : nfa; src : string }

let build ast =
  (* Thompson construction with mutable state lists *)
  let trans_acc = ref [] in
  (* (state, pred, target) *)
  let eps_acc = ref [] in
  (* (state, target) *)
  let counter = ref 0 in
  let fresh () =
    let s = !counter in
    incr counter;
    s
  in
  let add_char s pred target = trans_acc := (s, pred, target) :: !trans_acc in
  let add_eps s target = eps_acc := (s, target) :: !eps_acc in
  (* returns (start, end) *)
  let rec go = function
    | Empty ->
        let s = fresh () in
        (s, s)
    | Char_set pred ->
        let s = fresh () and e = fresh () in
        add_char s pred e;
        (s, e)
    | Seq (a, b) ->
        let sa, ea = go a in
        let sb, eb = go b in
        add_eps ea sb;
        (sa, eb)
    | Alt (a, b) ->
        let s = fresh () and e = fresh () in
        let sa, ea = go a in
        let sb, eb = go b in
        add_eps s sa;
        add_eps s sb;
        add_eps ea e;
        add_eps eb e;
        (s, e)
    | Star a ->
        let s = fresh () and e = fresh () in
        let sa, ea = go a in
        add_eps s sa;
        add_eps s e;
        add_eps ea sa;
        add_eps ea e;
        (s, e)
    | Plus a ->
        let sa, ea = go a in
        let e = fresh () in
        add_eps ea sa;
        add_eps ea e;
        (sa, e)
    | Opt a ->
        let s = fresh () and e = fresh () in
        let sa, ea = go a in
        add_eps s sa;
        add_eps s e;
        add_eps ea e;
        (s, e)
  in
  let start, accept = go ast in
  let nstates = !counter in
  let trans = Array.make nstates [||] in
  let targets = Array.make nstates [||] in
  let eps = Array.make nstates [] in
  let by_state = Hashtbl.create 16 in
  List.iter
    (fun (s, pred, target) ->
      let cur = try Hashtbl.find by_state s with Not_found -> [] in
      Hashtbl.replace by_state s ((pred, target) :: cur))
    !trans_acc;
  Hashtbl.iter
    (fun s lst ->
      trans.(s) <- Array.of_list (List.map fst lst);
      targets.(s) <- Array.of_list (List.map snd lst))
    by_state;
  List.iter (fun (s, target) -> eps.(s) <- target :: eps.(s)) !eps_acc;
  { trans; targets; eps; accept; start }

let compile src =
  match parse src with
  | ast -> Ok { nfa = build ast; src }
  | exception Syntax msg -> Error (Printf.sprintf "regex %S: %s" src msg)

module IS = Set.Make (Int)

let eps_closure nfa states =
  let rec go frontier acc =
    match frontier with
    | [] -> acc
    | s :: rest ->
        let nexts = List.filter (fun n -> not (IS.mem n acc)) nfa.eps.(s) in
        go (nexts @ rest) (List.fold_left (fun a n -> IS.add n a) acc nexts)
  in
  go (IS.elements states) states

let step nfa states c =
  IS.fold
    (fun s acc ->
      let preds = nfa.trans.(s) and tgts = nfa.targets.(s) in
      let acc = ref acc in
      Array.iteri (fun i pred -> if pred c then acc := IS.add tgts.(i) !acc) preds;
      !acc)
    states IS.empty

let run nfa s =
  let init = eps_closure nfa (IS.singleton nfa.start) in
  let final =
    String.fold_left
      (fun states c ->
        if IS.is_empty states then states else eps_closure nfa (step nfa states c))
      init s
  in
  final

let matches t s = IS.mem t.nfa.accept (run t.nfa s)

let feasible_prefix t s = not (IS.is_empty (run t.nfa s))

let pattern t = t.src

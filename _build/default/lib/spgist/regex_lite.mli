(** A small regular-expression engine (Thompson NFA).

    Supports the operators needed by the SP-GiST trie's
    regular-expression match search (Section 7.1): literals, [.], character
    classes [[abc]] / [[a-z]] (with leading [^] negation), grouping,
    alternation [|], and the postfix quantifiers [*], [+], [?].

    Beyond whole-string matching, the engine answers the {e prefix
    viability} question the trie search needs for pruning: given the
    characters on the path from the root, can any extension still match? *)

type t

val compile : string -> (t, string) result

val matches : t -> string -> bool
(** Whole-string (anchored) match. *)

val feasible_prefix : t -> string -> bool
(** [true] when some extension of the given prefix (possibly the prefix
    itself) matches — i.e. the NFA still has live states after consuming
    it.  Monotone: a prefix of a feasible string is feasible. *)

val pattern : t -> string
(** The source pattern, for display. *)

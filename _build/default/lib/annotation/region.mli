(** Multi-granularity annotation targets (Sections 3.1–3.2).

    Users annotate an entire table, entire columns, a subset of tuples, a
    few cells, or any combination; internally every region normalizes to a
    set of rectangles over the table viewed as a 2-D space (Figure 5). *)

type t =
  | Whole_table
  | Columns of string list
  | Rows of int list
  | Cells of (int * string) list  (** (row, column name) pairs *)
  | Rects of Bdbms_util.Rect.t list

val to_rects :
  t -> schema:Bdbms_relation.Schema.t -> row_count:int -> (Bdbms_util.Rect.t list, string) result
(** Normalize against a table's shape.  Row lists become maximal vertical
    strips, cell sets become a greedy rectangle cover.  Fails on unknown
    columns or out-of-range rows.  An empty table yields no rectangles. *)

val of_column : string -> t
val of_row : int -> t
val of_cell : row:int -> column:string -> t

val pp : Format.formatter -> t -> unit

(** Annotation conditions: the predicate language of AWHERE / AHAVING /
    FILTER (Section 3.4), evaluated over annotations instead of data. *)

type t =
  | Contains of string
      (** body text contains the substring *)
  | Author_is of string
  | Category_is of Ann.category
  | Added_before of Bdbms_util.Clock.time  (** strictly before *)
  | Added_after of Bdbms_util.Clock.time   (** strictly after *)
  | Xml_path_is of string list * string
      (** [Xml_path_is (path, v)]: some element at [path] under the body
          root has text content [v] — structured annotation querying *)
  | And of t * t
  | Or of t * t
  | Not of t
  | Any  (** always true *)

val eval : t -> Ann.t -> bool

val pp : Format.formatter -> t -> unit

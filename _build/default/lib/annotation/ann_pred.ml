module Xml_lite = Bdbms_util.Xml_lite
module Clock = Bdbms_util.Clock

type t =
  | Contains of string
  | Author_is of string
  | Category_is of Ann.category
  | Added_before of Clock.time
  | Added_after of Clock.time
  | Xml_path_is of string list * string
  | And of t * t
  | Or of t * t
  | Not of t
  | Any

let contains_substring ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  end

let rec eval t ann =
  match t with
  | Contains s -> contains_substring ~needle:s (Ann.body_text ann)
  | Author_is a -> String.equal ann.Ann.author a
  | Category_is c -> ann.Ann.category = c
  | Added_before time -> ann.Ann.created_at < time
  | Added_after time -> ann.Ann.created_at > time
  | Xml_path_is (path, v) ->
      List.exists
        (fun node -> String.trim (Xml_lite.text_content node) = v)
        (Xml_lite.find_path ann.Ann.body path)
  | And (a, b) -> eval a ann && eval b ann
  | Or (a, b) -> eval a ann || eval b ann
  | Not a -> not (eval a ann)
  | Any -> true

let rec pp fmt = function
  | Contains s -> Format.fprintf fmt "CONTAINS(%S)" s
  | Author_is a -> Format.fprintf fmt "AUTHOR = %S" a
  | Category_is c -> Format.fprintf fmt "CATEGORY = %s" (Ann.category_name c)
  | Added_before t -> Format.fprintf fmt "ADDED < %a" Clock.pp_time t
  | Added_after t -> Format.fprintf fmt "ADDED > %a" Clock.pp_time t
  | Xml_path_is (path, v) ->
      Format.fprintf fmt "PATH(%s) = %S" (String.concat "/" path) v
  | And (a, b) -> Format.fprintf fmt "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf fmt "(NOT %a)" pp a
  | Any -> Format.pp_print_string fmt "ANY"

module Xml_lite = Bdbms_util.Xml_lite
module Clock = Bdbms_util.Clock

type category =
  | Comment
  | Provenance
  | Curation
  | Quality
  | Custom of string

type t = {
  id : string;
  body : Xml_lite.t;
  category : category;
  author : string;
  created_at : Clock.time;
  mutable archived : bool;
  mutable archived_at : Clock.time option;
}

let make ~id ~body ~category ~author ~created_at =
  { id; body; category; author; created_at; archived = false; archived_at = None }

let body_text t = Xml_lite.text_content t.body
let body_string t = Xml_lite.to_string t.body

let archive t ~at =
  t.archived <- true;
  t.archived_at <- Some at

let restore t =
  t.archived <- false;
  t.archived_at <- None

let category_name = function
  | Comment -> "comment"
  | Provenance -> "provenance"
  | Curation -> "curation"
  | Quality -> "quality"
  | Custom s -> s

let category_of_name s =
  match String.lowercase_ascii s with
  | "comment" -> Comment
  | "provenance" -> Provenance
  | "curation" -> Curation
  | "quality" -> Quality
  | other -> Custom other

let equal_id a b = String.equal a.id b.id

let pp fmt t =
  Format.fprintf fmt "[%s %s@%a by %s%s] %s" t.id (category_name t.category)
    Clock.pp_time t.created_at t.author
    (if t.archived then " (archived)" else "")
    (body_text t)

lib/annotation/manager.ml: Ann Ann_store Bdbms_relation Bdbms_storage Bdbms_util Hashtbl List Option Printf Region String

lib/annotation/region.ml: Bdbms_relation Bdbms_util Format List Printf Result String

lib/annotation/ann_store.mli: Bdbms_storage Bdbms_util

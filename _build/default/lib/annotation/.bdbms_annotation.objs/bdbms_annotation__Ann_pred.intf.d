lib/annotation/ann_pred.mli: Ann Bdbms_util Format

lib/annotation/ann.mli: Bdbms_util Format

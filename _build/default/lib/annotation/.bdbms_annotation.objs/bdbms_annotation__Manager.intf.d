lib/annotation/manager.mli: Ann Ann_store Bdbms_relation Bdbms_storage Bdbms_util Region

lib/annotation/ann.ml: Bdbms_util Format String

lib/annotation/region.mli: Bdbms_relation Bdbms_util Format

lib/annotation/propagate.mli: Ann Ann_pred Bdbms_relation Manager

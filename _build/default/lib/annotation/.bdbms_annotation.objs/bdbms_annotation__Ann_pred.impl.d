lib/annotation/ann_pred.ml: Ann Bdbms_util Format List String

lib/annotation/ann_store.ml: Array Bdbms_index Bdbms_storage Bdbms_util Buffer Char List String

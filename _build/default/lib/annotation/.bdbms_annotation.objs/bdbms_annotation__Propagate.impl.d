lib/annotation/propagate.ml: Ann Ann_pred Array Bdbms_relation Hashtbl List Manager

module Rect = Bdbms_util.Rect
module Schema = Bdbms_relation.Schema

type t =
  | Whole_table
  | Columns of string list
  | Rows of int list
  | Cells of (int * string) list
  | Rects of Rect.t list

let to_rects t ~schema ~row_count =
  let arity = Schema.arity schema in
  let col_index name =
    match Schema.index_of schema name with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "unknown column %S" name)
  in
  let check_row row =
    if row < 0 || row >= row_count then
      Error (Printf.sprintf "row %d out of range (table has %d rows)" row row_count)
    else Ok row
  in
  let ( let* ) = Result.bind in
  let rec map_result f = function
    | [] -> Ok []
    | x :: rest ->
        let* y = f x in
        let* ys = map_result f rest in
        Ok (y :: ys)
  in
  match t with
  | Whole_table ->
      if row_count = 0 then Ok []
      else
        Ok [ Rect.make ~row_lo:0 ~row_hi:(row_count - 1) ~col_lo:0 ~col_hi:(arity - 1) ]
  | Columns names ->
      if row_count = 0 then
        let* _ = map_result col_index names in
        Ok []
      else
        let* cols = map_result col_index names in
        Ok
          (List.map
             (fun col -> Rect.col_span ~col ~row_lo:0 ~row_hi:(row_count - 1))
             (List.sort_uniq compare cols))
  | Rows rows ->
      let* rows = map_result check_row rows in
      let cells =
        List.concat_map
          (fun row -> List.init arity (fun col -> (row, col)))
          (List.sort_uniq compare rows)
      in
      Ok (Rect.cover_of_cells cells)
  | Cells cells ->
      let* pairs =
        map_result
          (fun (row, name) ->
            let* row = check_row row in
            let* col = col_index name in
            Ok (row, col))
          cells
      in
      Ok (Rect.cover_of_cells pairs)
  | Rects rects ->
      let* _ =
        map_result
          (fun r ->
            if r.Rect.row_hi >= row_count || r.Rect.col_hi >= arity then
              Error (Format.asprintf "rectangle %a out of table bounds" Rect.pp r)
            else Ok r)
          rects
      in
      Ok rects

let of_column name = Columns [ name ]
let of_row row = Rows [ row ]
let of_cell ~row ~column = Cells [ (row, column) ]

let pp fmt = function
  | Whole_table -> Format.pp_print_string fmt "TABLE"
  | Columns cs -> Format.fprintf fmt "COLUMNS(%s)" (String.concat "," cs)
  | Rows rs ->
      Format.fprintf fmt "ROWS(%s)" (String.concat "," (List.map string_of_int rs))
  | Cells cs ->
      Format.fprintf fmt "CELLS(%s)"
        (String.concat "," (List.map (fun (r, c) -> Printf.sprintf "%d.%s" r c) cs))
  | Rects rs ->
      Format.fprintf fmt "RECTS(%s)"
        (String.concat "," (List.map (Format.asprintf "%a" Rect.pp) rs))

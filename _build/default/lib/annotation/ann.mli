(** Annotation records: first-class metadata objects (Section 3).

    An annotation has an XML-formatted body (Section 3.2 supports
    (semi-)structured annotations), a category (Section 3's "categorizing
    annotations" — e.g. provenance vs user comments), an author, and the
    timestamp assigned when it was first added (used by ARCHIVE/RESTORE
    ... BETWEEN, Section 3.3).  Archival is a reversible flag: archived
    annotations stop propagating with query answers but can be restored. *)

type category =
  | Comment      (** free-text user commentary *)
  | Provenance   (** lineage records, system-maintained (Section 4) *)
  | Curation     (** curator verdicts and corrections *)
  | Quality      (** automatically attached quality/outdatedness notes *)
  | Custom of string

type t = {
  id : string;
  body : Bdbms_util.Xml_lite.t;
  category : category;
  author : string;
  created_at : Bdbms_util.Clock.time;
  mutable archived : bool;
  mutable archived_at : Bdbms_util.Clock.time option;
}

val make :
  id:string ->
  body:Bdbms_util.Xml_lite.t ->
  category:category ->
  author:string ->
  created_at:Bdbms_util.Clock.time ->
  t

val body_text : t -> string
(** Concatenated text content of the body. *)

val body_string : t -> string
(** Serialized XML of the body. *)

val archive : t -> at:Bdbms_util.Clock.time -> unit
val restore : t -> unit

val category_name : category -> string
val category_of_name : string -> category

val equal_id : t -> t -> bool
val pp : Format.formatter -> t -> unit

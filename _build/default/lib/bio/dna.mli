(** Synthetic DNA sequences.

    Stands in for the E. coli data of the paper's driving application (see
    DESIGN.md §2): deterministic generators with controllable length and
    composition, plus the standard sequence utilities. *)

val alphabet : string
(** ["ACGT"] *)

val is_valid : string -> bool

val random : Bdbms_util.Prng.t -> len:int -> string
(** Uniform base composition. *)

val random_gene : Bdbms_util.Prng.t -> codons:int -> string
(** An open reading frame: ATG start, [codons - 2] random non-stop codons,
    and a stop codon — so {!Translate.translate} always succeeds. *)

val gc_content : string -> float
(** Fraction of G/C bases; 0 on the empty string. *)

val reverse_complement : string -> string
(** @raise Invalid_argument on a non-DNA character. *)

val mutate : Bdbms_util.Prng.t -> string -> edits:int -> string
(** Apply point substitutions (used to simulate curation updates). *)

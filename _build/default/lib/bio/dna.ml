module Prng = Bdbms_util.Prng

let alphabet = "ACGT"

let is_valid s =
  String.for_all (function 'A' | 'C' | 'G' | 'T' -> true | _ -> false) s

let random rng ~len = Prng.string rng ~alphabet ~len

let stop_codons = [ "TAA"; "TAG"; "TGA" ]

let random_codon rng =
  let rec go () =
    let c = Prng.string rng ~alphabet ~len:3 in
    if List.mem c stop_codons then go () else c
  in
  go ()

let random_gene rng ~codons =
  if codons < 2 then invalid_arg "Dna.random_gene: need at least start + stop";
  let buf = Buffer.create (codons * 3) in
  Buffer.add_string buf "ATG";
  for _ = 1 to codons - 2 do
    Buffer.add_string buf (random_codon rng)
  done;
  Buffer.add_string buf (List.nth stop_codons (Prng.int rng 3));
  Buffer.contents buf

let gc_content s =
  if s = "" then 0.0
  else begin
    let gc = ref 0 in
    String.iter (fun c -> if c = 'G' || c = 'C' then incr gc) s;
    float_of_int !gc /. float_of_int (String.length s)
  end

let reverse_complement s =
  String.init (String.length s) (fun i ->
      match s.[String.length s - 1 - i] with
      | 'A' -> 'T'
      | 'T' -> 'A'
      | 'C' -> 'G'
      | 'G' -> 'C'
      | c -> invalid_arg (Printf.sprintf "Dna.reverse_complement: %C" c))

let mutate rng s ~edits =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    for _ = 1 to edits do
      let i = Prng.int rng (Bytes.length b) in
      Bytes.set b i alphabet.[Prng.int rng 4]
    done;
    Bytes.to_string b
  end

(** Protein secondary-structure sequences (H = helix, E = strand, L = loop).

    These are the run-heavy sequences of the paper's Figure 12 — the
    workload for the SBC-tree experiments.  The generator draws run
    lengths from a geometric distribution so the mean run length (the RLE
    compressibility knob) is a controlled parameter. *)

val alphabet : string
(** ["HEL"] *)

val random : Bdbms_util.Prng.t -> len:int -> mean_run:float -> string
(** A sequence of [len] characters whose maximal runs have geometric
    lengths with the given mean; consecutive runs always change state.
    @raise Invalid_argument if [mean_run < 1.0]. *)

val mean_run_length : string -> float
(** Measured mean of the maximal-run lengths (0 on the empty string). *)

val run_histogram : string -> (char * int) list
(** Total characters spent in each state. *)

module Value = Bdbms_relation.Value
module Procedure = Bdbms_dependency.Procedure

let match_score = 2
let mismatch_penalty = -1

(* Best ungapped local alignment: for every diagonal, the maximal-sum
   subarray of the per-position match/mismatch scores (Kadane). *)
let score a b =
  let m = String.length a and n = String.length b in
  if m = 0 || n = 0 then 0
  else begin
    let best = ref 0 in
    for offset = -(m - 1) to n - 1 do
      let run = ref 0 in
      let i0 = max 0 (-offset) in
      let i1 = min (m - 1) (n - 1 - offset) in
      for i = i0 to i1 do
        let s = if a.[i] = b.[i + offset] then match_score else mismatch_penalty in
        run := max 0 (!run + s);
        if !run > !best then best := !run
      done
    done;
    !best
  end

let k_param = 0.13
let lambda = 0.32

let evalue a b =
  let m = float_of_int (max 1 (String.length a)) in
  let n = float_of_int (max 1 (String.length b)) in
  k_param *. m *. n *. exp (-.lambda *. float_of_int (score a b))

let procedure ?(version = "2.2.15") () =
  Procedure.executable ~name:"BLAST" ~version (fun inputs ->
      match inputs with
      | [ va; vb ] -> (
          match (va, vb) with
          | (Value.VDna a | Value.VString a | Value.VProtein a),
            (Value.VDna b | Value.VString b | Value.VProtein b) ->
              Ok (Value.VFloat (evalue a b))
          | _ -> Error "BLAST: expected two sequence values")
      | _ -> Error "BLAST: expected exactly two inputs")

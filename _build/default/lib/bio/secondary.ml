module Prng = Bdbms_util.Prng
module Rle = Bdbms_util.Rle

let alphabet = "HEL"

let random rng ~len ~mean_run =
  if mean_run < 1.0 then invalid_arg "Secondary.random: mean_run must be >= 1";
  let p = 1.0 /. mean_run in
  let buf = Buffer.create len in
  let prev = ref ' ' in
  while Buffer.length buf < len do
    let c =
      let rec pick () =
        let c = alphabet.[Prng.int rng 3] in
        if c = !prev then pick () else c
      in
      pick ()
    in
    prev := c;
    let run = Prng.geometric rng ~p in
    Buffer.add_string buf (String.make (min run (len - Buffer.length buf)) c)
  done;
  Buffer.contents buf

let mean_run_length s =
  if s = "" then 0.0
  else begin
    let r = Rle.encode s in
    float_of_int (Rle.raw_length r) /. float_of_int (Rle.run_count r)
  end

let run_histogram s =
  let counts = Hashtbl.create 4 in
  String.iter
    (fun c -> Hashtbl.replace counts c (1 + Option.value (Hashtbl.find_opt counts c) ~default:0))
    s;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts [] |> List.sort compare

lib/bio/secondary.ml: Bdbms_util Buffer Hashtbl List Option String

lib/bio/translate.ml: Bdbms_dependency Bdbms_relation Buffer Dna Hashtbl List Printf String

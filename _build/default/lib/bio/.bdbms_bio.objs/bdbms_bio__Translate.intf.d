lib/bio/translate.mli: Bdbms_dependency

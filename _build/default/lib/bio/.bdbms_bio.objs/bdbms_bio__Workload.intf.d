lib/bio/workload.mli: Bdbms_util

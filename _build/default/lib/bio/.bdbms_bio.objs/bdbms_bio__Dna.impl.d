lib/bio/dna.ml: Bdbms_util Buffer Bytes List Printf String

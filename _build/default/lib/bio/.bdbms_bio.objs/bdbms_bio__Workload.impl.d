lib/bio/workload.ml: Array Bdbms_util Char Dna Float Hashtbl List Printf Secondary

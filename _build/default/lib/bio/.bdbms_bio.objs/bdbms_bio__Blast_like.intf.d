lib/bio/blast_like.mli: Bdbms_dependency

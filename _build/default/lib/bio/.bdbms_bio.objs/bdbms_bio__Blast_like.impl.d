lib/bio/blast_like.ml: Bdbms_dependency Bdbms_relation String

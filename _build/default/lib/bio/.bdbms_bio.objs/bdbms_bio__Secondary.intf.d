lib/bio/secondary.mli: Bdbms_util

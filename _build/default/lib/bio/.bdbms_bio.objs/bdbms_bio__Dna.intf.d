lib/bio/dna.mli: Bdbms_util

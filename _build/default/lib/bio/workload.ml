module Prng = Bdbms_util.Prng

type gene = { gid : string; gname : string; gsequence : string }

let name_prefixes =
  [| "mra"; "fts"; "yab"; "fru"; "cai"; "fix"; "isp"; "dna"; "rec"; "pol"; "rps"; "thr" |]

let genes rng ~n ?(codons = 40) ?(id_prefix = "JW") () =
  List.init n (fun i ->
      {
        gid = Printf.sprintf "%s%04d" id_prefix (i + 1);
        gname =
          Printf.sprintf "%s%c" (Prng.choose rng name_prefixes)
            (Char.chr (Char.code 'A' + Prng.int rng 26));
        gsequence = Dna.random_gene rng ~codons;
      })

type ann_target =
  | On_cell of int * int
  | On_row of int
  | On_column of int
  | On_block of int * int * int * int

let annotation_mix rng ~rows ~cols ~count ~profile =
  if rows = 0 || cols = 0 then []
  else
    List.init count (fun _ ->
        let cell () = On_cell (Prng.int rng rows, Prng.int rng cols) in
        let row () = On_row (Prng.int rng rows) in
        let col () = On_column (Prng.int rng cols) in
        let block () =
          let r0 = Prng.int rng rows and c0 = Prng.int rng cols in
          let r1 = min (rows - 1) (r0 + Prng.int_in rng ~lo:1 ~hi:(max 1 (rows / 10))) in
          let c1 = min (cols - 1) (c0 + Prng.int rng cols) in
          On_block (r0, r1, c0, c1)
        in
        match profile with
        | `Cells -> cell ()
        | `Rows -> row ()
        | `Columns -> col ()
        | `Mixed ->
            let d = Prng.int rng 100 in
            if d < 50 then cell ()
            else if d < 80 then row ()
            else if d < 95 then block ()
            else col ())

let comments =
  [|
    "Curated by user admin";
    "obtained from GenoBase";
    "These genes were obtained from RegulonDB";
    "possibly split by frameshift";
    "pseudogene";
    "This gene has an unknown function";
    "Involved in methyltransferase activity";
    "verified against lab notebook 2006-11";
    "low sequencing coverage in this region";
    "homolog of B. subtilis divIB";
  |]

let comment_text rng = Prng.choose rng comments

let points_uniform rng ~n ~extent =
  Array.init n (fun _ -> (Prng.float rng extent, Prng.float rng extent))

let points_clustered rng ~n ~extent ~clusters =
  if clusters < 1 then invalid_arg "Workload.points_clustered";
  let centers =
    Array.init clusters (fun _ -> (Prng.float rng extent, Prng.float rng extent))
  in
  let spread = extent /. float_of_int (4 * clusters) in
  Array.init n (fun _ ->
      let cx, cy = centers.(Prng.int rng clusters) in
      (* sum of uniforms approximates a gaussian well enough here *)
      let jitter () =
        spread *. (Prng.float rng 2.0 +. Prng.float rng 2.0 -. 2.0)
      in
      let clamp v = Float.max 0.0 (Float.min extent v) in
      (clamp (cx +. jitter ()), clamp (cy +. jitter ())))

let identifier_keys rng ~n =
  let seen = Hashtbl.create n in
  let rec fresh i =
    let key =
      Printf.sprintf "%s%c%04d" (Prng.choose rng name_prefixes)
        (Char.chr (Char.code 'A' + Prng.int rng 26))
        i
    in
    if Hashtbl.mem seen key then fresh (i + n) else key
  in
  List.init n (fun i ->
      let key = fresh i in
      Hashtbl.replace seen key ();
      key)

let structures rng ~n ~len ~mean_run =
  List.init n (fun _ -> Secondary.random rng ~len ~mean_run)

module Value = Bdbms_relation.Value
module Procedure = Bdbms_dependency.Procedure

(* standard genetic code *)
let code =
  [
    ("TTT", 'F'); ("TTC", 'F'); ("TTA", 'L'); ("TTG", 'L');
    ("CTT", 'L'); ("CTC", 'L'); ("CTA", 'L'); ("CTG", 'L');
    ("ATT", 'I'); ("ATC", 'I'); ("ATA", 'I'); ("ATG", 'M');
    ("GTT", 'V'); ("GTC", 'V'); ("GTA", 'V'); ("GTG", 'V');
    ("TCT", 'S'); ("TCC", 'S'); ("TCA", 'S'); ("TCG", 'S');
    ("CCT", 'P'); ("CCC", 'P'); ("CCA", 'P'); ("CCG", 'P');
    ("ACT", 'T'); ("ACC", 'T'); ("ACA", 'T'); ("ACG", 'T');
    ("GCT", 'A'); ("GCC", 'A'); ("GCA", 'A'); ("GCG", 'A');
    ("TAT", 'Y'); ("TAC", 'Y');
    ("CAT", 'H'); ("CAC", 'H'); ("CAA", 'Q'); ("CAG", 'Q');
    ("AAT", 'N'); ("AAC", 'N'); ("AAA", 'K'); ("AAG", 'K');
    ("GAT", 'D'); ("GAC", 'D'); ("GAA", 'E'); ("GAG", 'E');
    ("TGT", 'C'); ("TGC", 'C'); ("TGG", 'W');
    ("CGT", 'R'); ("CGC", 'R'); ("CGA", 'R'); ("CGG", 'R');
    ("AGT", 'S'); ("AGC", 'S'); ("AGA", 'R'); ("AGG", 'R');
    ("GGT", 'G'); ("GGC", 'G'); ("GGA", 'G'); ("GGG", 'G');
  ]

let stops = [ "TAA"; "TAG"; "TGA" ]

let codon_table =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (c, aa) -> Hashtbl.replace tbl c aa) code;
  tbl

let codon_to_aa codon =
  if String.length codon <> 3 || not (Dna.is_valid codon) then
    invalid_arg (Printf.sprintf "Translate.codon_to_aa: %S" codon);
  if List.mem codon stops then None else Some (Hashtbl.find codon_table codon)

let translate dna =
  let n = String.length dna in
  if n < 3 || n mod 3 <> 0 then Error "sequence length is not a multiple of 3"
  else if not (Dna.is_valid dna) then Error "not a DNA sequence"
  else if String.sub dna 0 3 <> "ATG" then Error "no ATG start codon"
  else begin
    let buf = Buffer.create (n / 3) in
    let rec go i =
      if i + 3 > n then Ok (Buffer.contents buf)
      else
        match codon_to_aa (String.sub dna i 3) with
        | None -> Ok (Buffer.contents buf) (* stop codon ends translation *)
        | Some aa ->
            Buffer.add_char buf aa;
            go (i + 3)
    in
    go 0
  end

(* average residue masses (Da), monoisotopic-ish approximations *)
let residue_mass = function
  | 'A' -> 71.08 | 'R' -> 156.19 | 'N' -> 114.10 | 'D' -> 115.09
  | 'C' -> 103.14 | 'E' -> 129.12 | 'Q' -> 128.13 | 'G' -> 57.05
  | 'H' -> 137.14 | 'I' -> 113.16 | 'L' -> 113.16 | 'K' -> 128.17
  | 'M' -> 131.19 | 'F' -> 147.18 | 'P' -> 97.12 | 'S' -> 87.08
  | 'T' -> 101.10 | 'W' -> 186.21 | 'Y' -> 163.18 | 'V' -> 99.13
  | _ -> 110.0

let molecular_weight s =
  (* residues plus one water *)
  String.fold_left (fun acc c -> acc +. residue_mass c) 18.02 s

let procedure () =
  Procedure.executable ~name:"P" ~version:"1.0" (fun inputs ->
      match inputs with
      | [ v ] -> (
          match v with
          | Value.VDna dna | Value.VString dna -> (
              match translate dna with
              | Ok protein -> Ok (Value.VProtein protein)
              | Error e -> Error ("P: " ^ e))
          | _ -> Error "P: expected a DNA value")
      | _ -> Error "P: expected exactly one input")

let weight_procedure () =
  Procedure.executable ~name:"MolWeight" ~version:"1.0" (fun inputs ->
      match inputs with
      | [ v ] -> (
          match v with
          | Value.VProtein p | Value.VString p -> Ok (Value.VFloat (molecular_weight p))
          | _ -> Error "MolWeight: expected a protein value")
      | _ -> Error "MolWeight: expected exactly one input")

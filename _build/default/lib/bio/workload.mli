(** Deterministic workload generators for the benchmark harness.

    Everything is parameterized and seeded: the benchmarks sweep the knobs
    that the paper's claims depend on (annotation granularity mix, RLE run
    length, point clustering) without any external data. *)

type gene = { gid : string; gname : string; gsequence : string }

val genes :
  Bdbms_util.Prng.t -> n:int -> ?codons:int -> ?id_prefix:string -> unit -> gene list
(** Synthetic E. coli-style gene records with JW-style ids (numbered from
    1 under [id_prefix], default ["JW"]), short names, and valid open
    reading frames. *)

(** Annotation target specs, mapped to regions by the caller. *)
type ann_target =
  | On_cell of int * int       (** row, column index *)
  | On_row of int
  | On_column of int
  | On_block of int * int * int * int  (** row_lo, row_hi, col_lo, col_hi *)

val annotation_mix :
  Bdbms_util.Prng.t ->
  rows:int ->
  cols:int ->
  count:int ->
  profile:[ `Cells | `Rows | `Columns | `Mixed ] ->
  ann_target list
(** [count] annotation targets over an [rows] × [cols] table.  [`Mixed]
    draws 50% cells / 30% rows / 15% blocks / 5% columns — the paper's
    "multi-granularity" situation of Figure 2. *)

val comment_text : Bdbms_util.Prng.t -> string
(** A plausible curator comment (fixed pool, deterministic choice). *)

val points_uniform : Bdbms_util.Prng.t -> n:int -> extent:float -> (float * float) array

val points_clustered :
  Bdbms_util.Prng.t -> n:int -> extent:float -> clusters:int -> (float * float) array
(** Gaussian-ish clusters (protein-contact-map-like density). *)

val identifier_keys : Bdbms_util.Prng.t -> n:int -> string list
(** Gene-name-like identifiers (shared 3-4 letter prefixes + numeric
    suffixes), duplicate-free — the trie/B+-tree key workload. *)

val structures :
  Bdbms_util.Prng.t -> n:int -> len:int -> mean_run:float -> string list
(** Secondary-structure corpus for the SBC-tree experiments. *)

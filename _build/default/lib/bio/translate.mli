(** Gene → protein translation: the paper's "prediction tool P" (Figure 9a)
    realized with the standard genetic code.

    Exposed both as a plain function and as an {e executable, non-invertible}
    procedure for the dependency manager, so Rule 1 can re-derive protein
    sequences automatically when a gene changes. *)

val codon_to_aa : string -> char option
(** Standard genetic code; [None] for a stop codon.
    @raise Invalid_argument on a non-codon. *)

val translate : string -> (string, string) result
(** Translate an open reading frame: requires an ATG start, length a
    multiple of 3, and translates up to (excluding) the first stop. *)

val molecular_weight : string -> float
(** Average molecular weight (Daltons) of a protein sequence — the paper's
    example of a derived calculated quantity. *)

val procedure : unit -> Bdbms_dependency.Procedure.t
(** Fresh procedure named ["P"]: executable, non-invertible; maps a DNA
    value to a PROTEIN value. *)

val weight_procedure : unit -> Bdbms_dependency.Procedure.t
(** ["MolWeight"]: protein sequence → FLOAT molecular weight. *)

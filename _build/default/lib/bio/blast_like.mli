(** A deterministic BLAST-like similarity scorer.

    Stands in for BLAST-2.2.15 in the paper's Figure 9(b) (see DESIGN.md
    §2): the dependency manager only needs an {e executable} procedure
    mapping two sequences to an E-value, with a version that can change.
    The score is the best ungapped local-alignment score (match +2,
    mismatch −1) and the E-value follows the Karlin–Altschul shape
    [E = K·m·n·exp(−λS)]. *)

val score : string -> string -> int
(** Best ungapped local alignment score over all relative offsets; 0 for
    empty inputs. *)

val evalue : string -> string -> float
(** Karlin–Altschul style E-value of {!score} with K = 0.13, λ = 0.32. *)

val procedure : ?version:string -> unit -> Bdbms_dependency.Procedure.t
(** ["BLAST"] (default version "2.2.15"): executable, non-invertible;
    takes two sequence values and returns a FLOAT E-value. *)

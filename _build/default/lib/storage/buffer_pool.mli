(** Buffer pool with pluggable eviction.

    Sits between all access methods and the {!Disk.t}.  A page access that
    hits the pool is counted as a hit (no disk I/O); a miss triggers a disk
    read and possibly a dirty-page write-back.  LRU and Clock (second
    chance) eviction are provided; the ablation bench compares them. *)

type policy = Lru | Clock

type t

val create : ?policy:policy -> capacity:int -> Disk.t -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int
val disk : t -> Disk.t

val with_page : t -> Page.id -> (Page.t -> 'a) -> 'a
(** Run [f] on the cached page.  Mutations made by [f] are NOT marked dirty;
    use {!with_page_mut} for writes. *)

val with_page_mut : t -> Page.id -> (Page.t -> 'a) -> 'a
(** Like {!with_page} but marks the page dirty so it is written back on
    eviction or {!flush_all}. *)

val alloc_page : t -> Page.id
(** Allocate a fresh page on the disk and cache it. *)

val flush_all : t -> unit
(** Write back every dirty cached page. *)

val resident : t -> int
(** Number of pages currently cached. *)

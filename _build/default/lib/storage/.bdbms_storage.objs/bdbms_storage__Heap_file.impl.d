lib/storage/heap_file.ml: Array Buffer_pool Disk Format List Page Printf String

lib/storage/stats.ml: Format

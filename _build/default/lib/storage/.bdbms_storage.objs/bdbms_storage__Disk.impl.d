lib/storage/disk.ml: Array Page Printf Stats

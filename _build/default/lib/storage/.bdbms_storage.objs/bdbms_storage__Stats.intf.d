lib/storage/stats.mli: Format

lib/storage/heap_file.mli: Buffer_pool Format Page

lib/storage/disk.mli: Page Stats

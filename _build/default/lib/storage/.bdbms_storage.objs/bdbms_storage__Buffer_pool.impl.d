lib/storage/buffer_pool.ml: Disk Hashtbl Page Queue Stats

lib/storage/page.mli:

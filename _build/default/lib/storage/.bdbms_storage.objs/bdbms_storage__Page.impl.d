lib/storage/page.ml: Bytes Char String

type t = {
  page_size : int;
  mutable pages : Page.t array;
  mutable count : int;
  stats : Stats.t;
}

let create ?(page_size = Page.default_size) () =
  { page_size; pages = Array.make 64 (Page.create ~size:page_size ()); count = 0;
    stats = Stats.create () }

let page_size t = t.page_size
let stats t = t.stats
let page_count t = t.count

let ensure_capacity t n =
  if n > Array.length t.pages then begin
    let cap = max n (2 * Array.length t.pages) in
    let pages = Array.make cap (Page.create ~size:t.page_size ()) in
    Array.blit t.pages 0 pages 0 t.count;
    t.pages <- pages
  end

let alloc t =
  ensure_capacity t (t.count + 1);
  let id = t.count in
  t.pages.(id) <- Page.create ~size:t.page_size ();
  t.count <- t.count + 1;
  Stats.record_alloc t.stats;
  Stats.record_write t.stats;
  id

let check t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Disk: page %d not allocated (count=%d)" id t.count)

let read t id =
  check t id;
  Stats.record_read t.stats;
  Page.copy t.pages.(id)

let write t id page =
  check t id;
  if Page.size page <> t.page_size then invalid_arg "Disk.write: page size mismatch";
  Stats.record_write t.stats;
  t.pages.(id) <- Page.copy page

let used_bytes t = t.count * t.page_size

(** I/O and storage accounting.

    The paper's quantitative claims (Section 7.2: storage reduction, I/O
    reduction for insertion, search I/O parity) are statements about page
    accesses and bytes, not wall-clock time on specific hardware.  Every
    storage-touching component threads one of these counter groups so the
    benchmarks can report exact page-level I/O counts. *)

type t

val create : unit -> t

val record_read : t -> unit
val record_write : t -> unit
val record_alloc : t -> unit
val record_hit : t -> unit
(** A logical page access satisfied by the buffer pool without disk I/O. *)

type snapshot = {
  reads : int;      (** physical page reads *)
  writes : int;     (** physical page writes *)
  allocs : int;     (** pages allocated *)
  hits : int;       (** buffer-pool hits *)
}

val snapshot : t -> snapshot
val reset : t -> unit

val diff : after:snapshot -> before:snapshot -> snapshot
(** Component-wise subtraction, for measuring one operation. *)

val total_io : snapshot -> int
(** [reads + writes]. *)

val pp : Format.formatter -> snapshot -> unit

type policy = Lru | Clock

type frame = {
  page_id : Page.id;
  page : Page.t;
  mutable dirty : bool;
  mutable referenced : bool; (* for Clock *)
  (* intrusive doubly-linked LRU list *)
  mutable prev : frame option;
  mutable next : frame option;
}

type t = {
  policy : policy;
  cap : int;
  disk : Disk.t;
  frames : (Page.id, frame) Hashtbl.t;
  (* LRU list: head = most recently used, tail = eviction victim *)
  mutable head : frame option;
  mutable tail : frame option;
  (* Clock: FIFO queue with lazy revalidation *)
  clock_queue : Page.id Queue.t;
}

let create ?(policy = Lru) ~capacity disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    policy;
    cap = capacity;
    disk;
    frames = Hashtbl.create capacity;
    head = None;
    tail = None;
    clock_queue = Queue.create ();
  }

let capacity t = t.cap
let disk t = t.disk
let resident t = Hashtbl.length t.frames

(* ------------------------------------------------------------- LRU list *)

let is_frame opt frame = match opt with Some f -> f == frame | None -> false

let list_unlink t frame =
  (match frame.prev with
  | Some p -> p.next <- frame.next
  | None -> if is_frame t.head frame then t.head <- frame.next);
  (match frame.next with
  | Some n -> n.prev <- frame.prev
  | None -> if is_frame t.tail frame then t.tail <- frame.prev);
  frame.prev <- None;
  frame.next <- None

let list_push_front t frame =
  frame.next <- t.head;
  frame.prev <- None;
  (match t.head with Some h -> h.prev <- Some frame | None -> ());
  t.head <- Some frame;
  if t.tail = None then t.tail <- Some frame

let touch t frame =
  frame.referenced <- true;
  if t.policy = Lru && not (is_frame t.head frame) then begin
    list_unlink t frame;
    list_push_front t frame
  end

(* ------------------------------------------------------------- eviction *)

let write_back t frame =
  if frame.dirty then begin
    Disk.write t.disk frame.page_id frame.page;
    frame.dirty <- false
  end

let drop_frame t frame =
  write_back t frame;
  if t.policy = Lru then list_unlink t frame;
  Hashtbl.remove t.frames frame.page_id

let evict_lru t = match t.tail with None -> () | Some victim -> drop_frame t victim

let evict_clock t =
  (* second chance over a FIFO queue with lazy deletion of stale entries *)
  let budget = ref (2 * (Queue.length t.clock_queue + 1)) in
  let victim = ref None in
  while !victim = None && !budget > 0 && not (Queue.is_empty t.clock_queue) do
    decr budget;
    let id = Queue.pop t.clock_queue in
    match Hashtbl.find_opt t.frames id with
    | None -> () (* stale: frame already evicted *)
    | Some f ->
        if f.referenced then begin
          f.referenced <- false;
          Queue.push id t.clock_queue
        end
        else victim := Some f
  done;
  match !victim with
  | Some f -> drop_frame t f
  | None -> (
      (* everything referenced twice around: fall back to any frame *)
      match Hashtbl.fold (fun _ f _ -> Some f) t.frames None with
      | Some f -> drop_frame t f
      | None -> ())

let make_room t =
  if Hashtbl.length t.frames >= t.cap then
    match t.policy with Lru -> evict_lru t | Clock -> evict_clock t

(* --------------------------------------------------------------- access *)

let install t page_id page =
  make_room t;
  let frame =
    { page_id; page; dirty = false; referenced = true; prev = None; next = None }
  in
  Hashtbl.replace t.frames page_id frame;
  (match t.policy with
  | Lru -> list_push_front t frame
  | Clock -> Queue.push page_id t.clock_queue);
  frame

let fetch t page_id =
  match Hashtbl.find_opt t.frames page_id with
  | Some frame ->
      Stats.record_hit (Disk.stats t.disk);
      touch t frame;
      frame
  | None -> install t page_id (Disk.read t.disk page_id)

let with_page t page_id f =
  let frame = fetch t page_id in
  f frame.page

let with_page_mut t page_id f =
  let frame = fetch t page_id in
  frame.dirty <- true;
  f frame.page

let alloc_page t =
  let id = Disk.alloc t.disk in
  let frame = install t id (Page.create ~size:(Disk.page_size t.disk) ()) in
  ignore frame;
  id

let flush_all t = Hashtbl.iter (fun _ f -> write_back t f) t.frames

type snapshot = { reads : int; writes : int; allocs : int; hits : int }

type t = {
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_allocs : int;
  mutable n_hits : int;
}

let create () = { n_reads = 0; n_writes = 0; n_allocs = 0; n_hits = 0 }

let record_read t = t.n_reads <- t.n_reads + 1
let record_write t = t.n_writes <- t.n_writes + 1
let record_alloc t = t.n_allocs <- t.n_allocs + 1
let record_hit t = t.n_hits <- t.n_hits + 1

let snapshot t =
  { reads = t.n_reads; writes = t.n_writes; allocs = t.n_allocs; hits = t.n_hits }

let reset t =
  t.n_reads <- 0;
  t.n_writes <- 0;
  t.n_allocs <- 0;
  t.n_hits <- 0

let diff ~after ~before =
  {
    reads = after.reads - before.reads;
    writes = after.writes - before.writes;
    allocs = after.allocs - before.allocs;
    hits = after.hits - before.hits;
  }

let total_io s = s.reads + s.writes

let pp fmt s =
  Format.fprintf fmt "reads=%d writes=%d allocs=%d hits=%d" s.reads s.writes
    s.allocs s.hits

(** A simulated page store.

    Stands in for the physical disk of the authors' PostgreSQL testbed: a
    growable array of fixed-size pages where every read, write, and
    allocation is counted in a {!Stats.t}.  All index and heap-file claims
    in the benchmarks are measured as page accesses against this store
    (see DESIGN.md §2 for why this substitution is faithful). *)

type t

val create : ?page_size:int -> unit -> t
val page_size : t -> int
val stats : t -> Stats.t
val page_count : t -> int

val alloc : t -> Page.id
(** Allocate a fresh zeroed page and return its id (counted as an alloc and
    a write). *)

val read : t -> Page.id -> Page.t
(** A copy of the page's current contents (counted as a read).
    @raise Invalid_argument on an unallocated id. *)

val write : t -> Page.id -> Page.t -> unit
(** Store the page contents (counted as a write). *)

val used_bytes : t -> int
(** [page_count * page_size]: allocated storage footprint. *)

(** Volcano-style streaming iterators.

    {!Ops} materializes every intermediate result, which keeps the
    annotation-propagation semantics easy to verify; this module is the
    pipelined alternative for plain relational work over data too large to
    materialize: each operator pulls tuples one at a time from its input
    (Graefe's iterator model), so a select-project pipeline over a large
    table runs in constant memory. *)

type t
(** A cursor producing tuples of a fixed schema.  Cursors are single-use:
    once exhausted they stay exhausted. *)

val schema : t -> Schema.t

val next : t -> Tuple.t option
(** Pull the next tuple; [None] at end of stream. *)

val close : t -> unit
(** Release the cursor early (idempotent; pulling after close yields
    [None]). *)

val scan : Table.t -> t
(** Stream a table's live rows in row order, reading pages lazily. *)

val of_list : Schema.t -> Tuple.t list -> t

val select : t -> Expr.t -> t
(** Pipelined filter. *)

val project : t -> string list -> t
(** Pipelined projection.  @raise Not_found on unknown columns. *)

val limit : t -> int -> t
(** Stops pulling from the input after [n] tuples (early termination). *)

val nested_loop_join : t -> rebuild:(unit -> t) -> on:Expr.t -> t
(** Join the outer cursor with an inner relation; [rebuild] produces a
    fresh inner cursor per outer tuple (the textbook pipelined
    nested-loop join). *)

val to_list : t -> Tuple.t list
(** Drain the cursor. *)

val to_rowset : t -> Ops.rowset
(** Drain into a materialized rowset. *)

val count : t -> int
(** Drain, counting tuples. *)

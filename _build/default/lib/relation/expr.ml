type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type arith = Add | Sub | Mul | Div | Mod

type t =
  | Col of string
  | Lit of Value.t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t
  | Like of t * string
  | In_list of t * Value.t list
  | Is_null of t
  | Concat of t * t

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* LIKE with % (any run) and _ (any char), via memoized recursion. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
        let r =
          if pi >= np then si >= ns
          else
            match pattern.[pi] with
            | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
            | '_' -> si < ns && go (pi + 1) (si + 1)
            | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
        in
        Hashtbl.replace memo (pi, si) r;
        r
  in
  go 0 0

let apply_cmp op a b =
  if Value.is_null a || Value.is_null b then Value.VNull
  else
    let c = Value.compare a b in
    let r =
      match op with
      | Eq -> Value.equal a b
      | Neq -> not (Value.equal a b)
      | Lt -> c < 0
      | Leq -> c <= 0
      | Gt -> c > 0
      | Geq -> c >= 0
    in
    Value.VBool r

let apply_arith op a b =
  if Value.is_null a || Value.is_null b then Value.VNull
  else
    match (a, b) with
    | Value.VInt x, Value.VInt y -> (
        match op with
        | Add -> Value.VInt (x + y)
        | Sub -> Value.VInt (x - y)
        | Mul -> Value.VInt (x * y)
        | Div -> if y = 0 then fail "division by zero" else Value.VInt (x / y)
        | Mod -> if y = 0 then fail "modulo by zero" else Value.VInt (x mod y))
    | (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) -> (
        let x = Value.as_float a and y = Value.as_float b in
        match op with
        | Add -> Value.VFloat (x +. y)
        | Sub -> Value.VFloat (x -. y)
        | Mul -> Value.VFloat (x *. y)
        | Div -> if y = 0.0 then fail "division by zero" else Value.VFloat (x /. y)
        | Mod -> fail "modulo of floats")
    | _ ->
        fail "arithmetic on non-numeric values (%s, %s)" (Value.to_display a)
          (Value.to_display b)

let rec eval schema tuple expr =
  match expr with
  | Lit v -> v
  | Col name -> (
      match Schema.index_of schema name with
      | Some i -> Tuple.get tuple i
      | None -> fail "unknown column %S" name)
  | Cmp (op, a, b) -> apply_cmp op (eval schema tuple a) (eval schema tuple b)
  | And (a, b) -> (
      (* three-valued AND *)
      match (eval schema tuple a, eval schema tuple b) with
      | Value.VBool false, _ | _, Value.VBool false -> Value.VBool false
      | Value.VBool true, Value.VBool true -> Value.VBool true
      | (Value.VNull | Value.VBool _), (Value.VNull | Value.VBool _) -> Value.VNull
      | a', b' ->
          fail "AND on non-boolean values (%s, %s)" (Value.to_display a')
            (Value.to_display b'))
  | Or (a, b) -> (
      match (eval schema tuple a, eval schema tuple b) with
      | Value.VBool true, _ | _, Value.VBool true -> Value.VBool true
      | Value.VBool false, Value.VBool false -> Value.VBool false
      | (Value.VNull | Value.VBool _), (Value.VNull | Value.VBool _) -> Value.VNull
      | a', b' ->
          fail "OR on non-boolean values (%s, %s)" (Value.to_display a')
            (Value.to_display b'))
  | Not a -> (
      match eval schema tuple a with
      | Value.VBool b -> Value.VBool (not b)
      | Value.VNull -> Value.VNull
      | v -> fail "NOT on non-boolean value %s" (Value.to_display v))
  | Arith (op, a, b) -> apply_arith op (eval schema tuple a) (eval schema tuple b)
  | Like (a, pattern) -> (
      match eval schema tuple a with
      | Value.VNull -> Value.VNull
      | v -> Value.VBool (like_match ~pattern (Value.as_string v)))
  | In_list (a, vs) ->
      let v = eval schema tuple a in
      if Value.is_null v then Value.VNull
      else Value.VBool (List.exists (Value.equal v) vs)
  | Is_null a -> Value.VBool (Value.is_null (eval schema tuple a))
  | Concat (a, b) -> (
      match (eval schema tuple a, eval schema tuple b) with
      | Value.VNull, _ | _, Value.VNull -> Value.VNull
      | a', b' -> Value.VString (Value.as_string a' ^ Value.as_string b'))

let eval_pred schema tuple expr =
  match eval schema tuple expr with
  | Value.VBool b -> b
  | Value.VNull -> false
  | v -> fail "predicate evaluated to non-boolean %s" (Value.to_display v)

let columns_used expr =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add name =
    let key = String.lowercase_ascii name in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := name :: !out
    end
  in
  let rec go = function
    | Col name -> add name
    | Lit _ -> ()
    | Cmp (_, a, b) | And (a, b) | Or (a, b) | Arith (_, a, b) | Concat (a, b) ->
        go a;
        go b
    | Not a | Like (a, _) | In_list (a, _) | Is_null a -> go a
  in
  go expr;
  List.rev !out

let rec pp fmt = function
  | Col name -> Format.pp_print_string fmt name
  | Lit v -> Value.pp fmt v
  | Cmp (op, a, b) ->
      let sym =
        match op with
        | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Leq -> "<=" | Gt -> ">" | Geq -> ">="
      in
      Format.fprintf fmt "(%a %s %a)" pp a sym pp b
  | And (a, b) -> Format.fprintf fmt "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf fmt "(NOT %a)" pp a
  | Arith (op, a, b) ->
      let sym =
        match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
      in
      Format.fprintf fmt "(%a %s %a)" pp a sym pp b
  | Like (a, p) -> Format.fprintf fmt "(%a LIKE %S)" pp a p
  | In_list (a, vs) ->
      Format.fprintf fmt "(%a IN (%s))" pp a
        (String.concat ", " (List.map Value.to_display vs))
  | Is_null a -> Format.fprintf fmt "(%a IS NULL)" pp a
  | Concat (a, b) -> Format.fprintf fmt "(%a || %a)" pp a pp b

type column = { name : string; ty : Value.ty }

type t = { cols : column array }

let norm s = String.lowercase_ascii s

let make cols =
  if cols = [] then invalid_arg "Schema.make: empty column list";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let key = norm c.name in
      if Hashtbl.mem seen key then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add seen key ())
    cols;
  { cols = Array.of_list cols }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols
let column_at t i = t.cols.(i)

let index_of t name =
  let key = norm name in
  let rec go i =
    if i >= Array.length t.cols then None
    else if norm t.cols.(i).name = key then Some i
    else go (i + 1)
  in
  go 0

let index_of_exn t name =
  match index_of t name with Some i -> i | None -> raise Not_found

let mem t name = index_of t name <> None

let project t names =
  make (List.map (fun n -> t.cols.(index_of_exn t n)) names)

let concat a b =
  let names = Hashtbl.create 8 in
  Array.iter (fun c -> Hashtbl.replace names (norm c.name) ()) a.cols;
  let rename c =
    let rec fresh n =
      if Hashtbl.mem names (norm n) then fresh ("r_" ^ n) else n
    in
    let name = fresh c.name in
    Hashtbl.replace names (norm name) ();
    { c with name }
  in
  { cols = Array.append a.cols (Array.map rename b.cols) }

let rename_columns t renames =
  let apply c =
    match List.find_opt (fun (old, _) -> norm old = norm c.name) renames with
    | Some (_, fresh) -> { c with name = fresh }
    | None -> c
  in
  make (List.map apply (columns t))

let equal a b = a.cols = b.cols

let union_compatible a b =
  arity a = arity b
  && Array.for_all2 (fun ca cb -> ca.ty = cb.ty) a.cols b.cols

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (List.map (fun c -> c.name ^ " " ^ Value.type_name c.ty) (columns t)))

type t = {
  schema : Schema.t;
  mutable pull : unit -> Tuple.t option;
  mutable closed : bool;
}

let schema t = t.schema

let next t = if t.closed then None else t.pull ()

let close t =
  t.closed <- true;
  t.pull <- (fun () -> None)

let make schema pull = { schema; pull; closed = false }

let scan table =
  let row = ref 0 in
  let total = Table.row_count table in
  let rec pull () =
    if !row >= total then None
    else begin
      let r = !row in
      incr row;
      match Table.get table r with Some tuple -> Some tuple | None -> pull ()
    end
  in
  make (Table.schema table) pull

let of_list schema tuples =
  let remaining = ref tuples in
  make schema (fun () ->
      match !remaining with
      | [] -> None
      | t :: rest ->
          remaining := rest;
          Some t)

let select input pred =
  let rec pull () =
    match next input with
    | None -> None
    | Some tuple ->
        if Expr.eval_pred input.schema tuple pred then Some tuple else pull ()
  in
  make input.schema pull

let project input names =
  let out_schema = Schema.project input.schema names in
  let indices = List.map (Schema.index_of_exn input.schema) names in
  make out_schema (fun () ->
      match next input with
      | None -> None
      | Some tuple ->
          Some (Array.of_list (List.map (fun i -> Tuple.get tuple i) indices)))

let limit input n =
  let remaining = ref n in
  make input.schema (fun () ->
      if !remaining <= 0 then begin
        close input;
        None
      end
      else
        match next input with
        | None -> None
        | Some tuple ->
            decr remaining;
            Some tuple)

let nested_loop_join outer ~rebuild ~on =
  let inner_schema = (rebuild ()).schema in
  let out_schema = Schema.concat outer.schema inner_schema in
  let current_outer = ref None in
  let current_inner = ref None in
  let rec pull () =
    match !current_outer with
    | None -> (
        match next outer with
        | None -> None
        | Some o ->
            current_outer := Some o;
            current_inner := Some (rebuild ());
            pull ())
    | Some o -> (
        match !current_inner with
        | None ->
            current_outer := None;
            pull ()
        | Some inner -> (
            match next inner with
            | None ->
                current_inner := None;
                current_outer := None;
                pull ()
            | Some i ->
                let joined = Array.append o i in
                if Expr.eval_pred out_schema joined on then Some joined else pull ()))
  in
  make out_schema pull

let to_list t =
  let rec go acc =
    match next t with None -> List.rev acc | Some tuple -> go (tuple :: acc)
  in
  go []

let to_rowset t = { Ops.schema = t.schema; rows = to_list t }

let count t =
  let rec go n = match next t with None -> n | Some _ -> go (n + 1) in
  go 0

(** Relation schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t

val make : column list -> t
(** @raise Invalid_argument on duplicate (case-insensitive) column names or
    an empty column list. *)

val columns : t -> column list
val arity : t -> int
val column_at : t -> int -> column

val index_of : t -> string -> int option
(** Case-insensitive column lookup. *)

val index_of_exn : t -> string -> int
(** @raise Not_found when the column does not exist. *)

val mem : t -> string -> bool

val project : t -> string list -> t
(** Sub-schema in the given column order.
    @raise Not_found on an unknown column. *)

val concat : t -> t -> t
(** Schema of a join result; right-hand duplicates are renamed by prefixing
    ["r_"] until unique. *)

val rename_columns : t -> (string * string) list -> t
(** Apply (old, new) renamings. *)

val equal : t -> t -> bool
val union_compatible : t -> t -> bool
(** Same arity and column types (names may differ), as required by the set
    operators. *)

val pp : Format.formatter -> t -> unit

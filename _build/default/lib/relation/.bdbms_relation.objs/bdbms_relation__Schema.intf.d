lib/relation/schema.mli: Format Value

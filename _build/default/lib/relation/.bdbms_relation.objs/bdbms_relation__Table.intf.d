lib/relation/table.mli: Bdbms_storage Schema Tuple Value

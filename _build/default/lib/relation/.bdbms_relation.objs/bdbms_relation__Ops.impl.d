lib/relation/ops.ml: Array Expr Format Hashtbl List Schema Set Table Tuple Value

lib/relation/ops.mli: Expr Format Schema Table Tuple Value

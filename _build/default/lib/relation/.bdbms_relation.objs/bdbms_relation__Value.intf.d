lib/relation/value.mli: Bdbms_util Format

lib/relation/catalog.mli: Bdbms_storage Schema Table

lib/relation/cursor.mli: Expr Ops Schema Table Tuple

lib/relation/tuple.ml: Array Buffer Char Format List Printf Schema String Value

lib/relation/schema.ml: Array Format Hashtbl List String Value

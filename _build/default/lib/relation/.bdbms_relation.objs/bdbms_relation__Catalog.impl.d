lib/relation/catalog.ml: Bdbms_storage Hashtbl List Printf String Table

lib/relation/table.ml: Array Bdbms_storage List Printf Schema Tuple Value

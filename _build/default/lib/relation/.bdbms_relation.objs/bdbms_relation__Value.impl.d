lib/relation/value.ml: Bdbms_util Bool Buffer Char Float Format Int Int64 Printf String

lib/relation/expr.ml: Format Hashtbl List Printf Schema String Tuple Value

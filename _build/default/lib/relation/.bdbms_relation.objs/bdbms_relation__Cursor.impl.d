lib/relation/cursor.ml: Array Expr List Ops Schema Table Tuple

lib/index/key_codec.mli:

lib/index/key_codec.ml: Buffer Char Int64 String

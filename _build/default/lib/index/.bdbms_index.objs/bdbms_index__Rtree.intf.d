lib/index/rtree.mli: Bdbms_storage

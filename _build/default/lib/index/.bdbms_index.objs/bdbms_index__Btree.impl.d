lib/index/btree.ml: Array Bdbms_storage Char Key_codec List Option Printf String

lib/index/rtree.ml: Array Bdbms_storage Char Float Int64 List Option

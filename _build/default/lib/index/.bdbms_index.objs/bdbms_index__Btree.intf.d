lib/index/btree.mli: Bdbms_storage

(** Order-preserving byte encodings for index keys.

    B+-tree nodes store keys as opaque byte strings compared
    lexicographically; these encoders make the byte order agree with the
    natural value order. *)

val of_int : int -> string
(** 8 bytes, big-endian, sign bit flipped: lexicographic byte order equals
    numeric order over the full [int] range. *)

val to_int : string -> int

val of_string : string -> string
(** Identity (raw strings already sort lexicographically). *)

val of_float : float -> string
(** 8 bytes; total order matching [Float.compare] (NaN sorts last). *)

val to_float : string -> float

val pair : string -> string -> string
(** [pair a b] concatenates with a length prefix on [a] so that pairs sort
    by [a] first (using escaped encoding), then [b]. *)

val split_pair : string -> string * string

val successor : string -> string option
(** Smallest string strictly greater than every string with this prefix,
    i.e. the exclusive upper bound for prefix scans.  [None] when the
    prefix is all [0xff] (no such bound). *)

let of_int n =
  (* flip the sign bit so negative ints sort below positive ones *)
  let v = Int64.logxor (Int64.of_int n) Int64.min_int in
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xffL)))

let to_int s =
  if String.length s <> 8 then invalid_arg "Key_codec.to_int";
  let v = ref 0L in
  String.iter (fun c -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c))) s;
  Int64.to_int (Int64.logxor !v Int64.min_int)

let of_string s = s

let of_float f =
  let bits = Int64.bits_of_float f in
  (* standard total-order transform: positive floats flip sign bit,
     negative floats flip all bits *)
  let v =
    if Int64.compare bits 0L >= 0 then Int64.logxor bits Int64.min_int
    else Int64.lognot bits
  in
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * (7 - i))) 0xffL)))

let to_float s =
  if String.length s <> 8 then invalid_arg "Key_codec.to_float";
  let v = ref 0L in
  String.iter (fun c -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c))) s;
  let bits =
    if Int64.compare !v 0L < 0 then Int64.logxor !v Int64.min_int else Int64.lognot !v
  in
  Int64.float_of_bits bits

(* Escape \x00 as \x00\x01 and terminate with \x00\x00: byte order of the
   encoding matches (first, second) lexicographic pair order. *)
let pair a b =
  let buf = Buffer.create (String.length a + String.length b + 2) in
  String.iter
    (fun c ->
      Buffer.add_char buf c;
      if c = '\000' then Buffer.add_char buf '\001')
    a;
  Buffer.add_string buf "\000\000";
  Buffer.add_string buf b;
  Buffer.contents buf

let split_pair s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i + 1 >= n && not (i < n && s.[i] <> '\000') then
      invalid_arg "Key_codec.split_pair: missing terminator"
    else if s.[i] = '\000' then
      if s.[i + 1] = '\000' then i + 2
      else if s.[i + 1] = '\001' then begin
        Buffer.add_char buf '\000';
        go (i + 2)
      end
      else invalid_arg "Key_codec.split_pair: bad escape"
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  let rest_start = go 0 in
  (Buffer.contents buf, String.sub s rest_start (n - rest_start))

let successor prefix =
  let n = String.length prefix in
  let rec go i =
    if i < 0 then None
    else if prefix.[i] = '\xff' then go (i - 1)
    else
      Some (String.sub prefix 0 i ^ String.make 1 (Char.chr (Char.code prefix.[i] + 1)))
  in
  go (n - 1)
